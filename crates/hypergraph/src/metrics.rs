//! Partition-quality metrics.
//!
//! The central metric is the **connectivity-1 cut** (k-1 cut) of Eq. (2)
//! of the paper: `cut(H, P) = Σ_j c_j (λ_j − 1)` where `λ_j` is the number
//! of parts that net `j`'s pins touch. For the column-net hypergraph model
//! of a sparse-matrix computation this equals the application's true
//! communication volume, which is why the paper prefers hypergraphs over
//! graphs (whose edge cut only approximates volume).

use crate::parallel;
use crate::{CsrGraph, Hypergraph, PartId};

/// Per-part total vertex weight under `part`.
///
/// # Panics
/// Panics if an assignment is `>= k` or `part` has the wrong length.
pub fn part_weights(h: &Hypergraph, part: &[PartId], k: usize) -> Vec<f64> {
    assert_eq!(part.len(), h.num_vertices());
    let mut w = vec![0.0; k];
    for (v, &p) in part.iter().enumerate() {
        assert!(p < k, "vertex {v} assigned to out-of-range part {p}");
        w[p] += h.vertex_weight(v);
    }
    w
}

/// Per-constraint per-part loads under `part`: row `c` is the total of
/// load constraint `c` in every part. Row `0` is bit-identical to
/// [`part_weights`] (the primary constraint *is* the scalar weight, and
/// both accumulate in vertex order).
///
/// # Panics
/// Panics if an assignment is `>= k` or `part` has the wrong length.
pub fn part_loads(h: &Hypergraph, part: &[PartId], k: usize) -> Vec<Vec<f64>> {
    assert_eq!(part.len(), h.num_vertices());
    let arity = h.load_arity();
    let mut w = vec![vec![0.0; k]; arity];
    for c in 0..arity {
        let col = h.loads().constraint(c);
        let row = &mut w[c];
        for (v, &p) in part.iter().enumerate() {
            assert!(p < k, "vertex {v} assigned to out-of-range part {p}");
            row[p] += col[v];
        }
    }
    w
}

/// Per-part loads of the *auxiliary* constraints only (`1..arity`), in
/// the layout [`crate::balance::PartTargets::feasible`] expects. Empty at
/// arity 1.
pub fn aux_part_loads(h: &Hypergraph, part: &[PartId], k: usize) -> Vec<Vec<f64>> {
    let mut rows = part_loads(h, part, k);
    rows.remove(0);
    rows
}

/// Per-constraint imbalance: `imbalance_of_weights` of every row of
/// [`part_loads`]. Entry `0` equals [`imbalance`].
pub fn imbalance_per_constraint(h: &Hypergraph, part: &[PartId], k: usize) -> Vec<f64> {
    part_loads(h, part, k)
        .iter()
        .map(|row| imbalance_of_weights(row))
        .collect()
}

/// Per-part total vertex weight for a graph.
pub fn graph_part_weights(g: &CsrGraph, part: &[PartId], k: usize) -> Vec<f64> {
    assert_eq!(part.len(), g.num_vertices());
    let mut w = vec![0.0; k];
    for (v, &p) in part.iter().enumerate() {
        assert!(p < k, "vertex {v} assigned to out-of-range part {p}");
        w[p] += g.vertex_weight(v);
    }
    w
}

/// The load imbalance of a weight vector: `max_p W_p / W_avg`.
///
/// A perfectly balanced partition returns `1.0`. Eq. (1) of the paper
/// requires `imbalance ≤ 1 + ε`. Returns `1.0` when total weight is zero.
pub fn imbalance_of_weights(weights: &[f64]) -> f64 {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 || weights.is_empty() {
        return 1.0;
    }
    let avg = total / weights.len() as f64;
    weights.iter().cloned().fold(0.0, f64::max) / avg
}

/// Load imbalance of `part` on hypergraph `h`.
pub fn imbalance(h: &Hypergraph, part: &[PartId], k: usize) -> f64 {
    imbalance_of_weights(&part_weights(h, part, k))
}

/// Load imbalance of `part` on graph `g`.
pub fn graph_imbalance(g: &CsrGraph, part: &[PartId], k: usize) -> f64 {
    imbalance_of_weights(&graph_part_weights(g, part, k))
}

/// The connectivity `λ_j` of every net: the number of distinct parts its
/// pins touch. Empty nets have connectivity `0`.
pub fn connectivities(h: &Hypergraph, part: &[PartId], k: usize) -> Vec<usize> {
    assert_eq!(part.len(), h.num_vertices());
    let mut lambda = vec![0usize; h.num_nets()];
    let mut mark = vec![usize::MAX; k];
    for j in 0..h.num_nets() {
        let mut count = 0;
        for &v in h.net(j) {
            let p = part[v];
            assert!(p < k);
            if mark[p] != j {
                mark[p] = j;
                count += 1;
            }
        }
        lambda[j] = count;
    }
    lambda
}

/// Which cut metric to optimize / report.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CutMetric {
    /// Connectivity-1 (`Σ c_j (λ_j − 1)`), Eq. (2); models true
    /// communication volume. The paper's metric.
    #[default]
    Connectivity,
    /// Cut-net (`Σ c_j [λ_j > 1]`); counted once per cut net.
    CutNet,
}

/// Cut size of `part` under the chosen metric.
pub fn cutsize(h: &Hypergraph, part: &[PartId], k: usize, metric: CutMetric) -> f64 {
    let lambda = connectivities(h, part, k);
    let mut cut = 0.0;
    for (j, &l) in lambda.iter().enumerate() {
        match metric {
            CutMetric::Connectivity => {
                if l > 1 {
                    cut += h.net_cost(j) * (l - 1) as f64;
                }
            }
            CutMetric::CutNet => {
                if l > 1 {
                    cut += h.net_cost(j);
                }
            }
        }
    }
    cut
}

/// Connectivity-1 cut (Eq. (2)): the paper's communication-volume metric.
pub fn cutsize_connectivity(h: &Hypergraph, part: &[PartId], k: usize) -> f64 {
    cutsize(h, part, k, CutMetric::Connectivity)
}

/// [`cutsize`] evaluated in parallel over net chunks with the
/// deterministic chunked reduction of [`crate::parallel`]: bit-identical
/// at every `threads` value, including `1`.
pub fn cutsize_par(
    h: &Hypergraph,
    part: &[PartId],
    k: usize,
    metric: CutMetric,
    threads: usize,
) -> f64 {
    assert_eq!(part.len(), h.num_vertices());
    let partials = parallel::map_chunks_with(
        threads,
        h.num_nets(),
        parallel::DEFAULT_CHUNK,
        || vec![usize::MAX; k],
        |mark, _, range| {
            let mut cut = 0.0;
            for j in range {
                let mut lambda = 0usize;
                for &v in h.net(j) {
                    let p = part[v];
                    assert!(p < k, "vertex {v} assigned to out-of-range part {p}");
                    if mark[p] != j {
                        mark[p] = j;
                        lambda += 1;
                    }
                }
                if lambda > 1 {
                    cut += match metric {
                        CutMetric::Connectivity => h.net_cost(j) * (lambda - 1) as f64,
                        CutMetric::CutNet => h.net_cost(j),
                    };
                }
            }
            cut
        },
    );
    partials.into_iter().fold(0.0, |acc, x| acc + x)
}

/// [`cutsize_connectivity`] evaluated in parallel ([`cutsize_par`]).
pub fn cutsize_connectivity_par(h: &Hypergraph, part: &[PartId], k: usize, threads: usize) -> f64 {
    cutsize_par(h, part, k, CutMetric::Connectivity, threads)
}

/// [`part_weights`] evaluated in parallel over vertex chunks; per-chunk
/// weight vectors are combined in chunk order, so the result is
/// bit-identical at every `threads` value.
pub fn part_weights_par(h: &Hypergraph, part: &[PartId], k: usize, threads: usize) -> Vec<f64> {
    assert_eq!(part.len(), h.num_vertices());
    let partials = parallel::map_chunks(
        threads,
        part.len(),
        parallel::DEFAULT_CHUNK,
        |_, range| {
            let mut w = vec![0.0; k];
            for v in range {
                let p = part[v];
                assert!(p < k, "vertex {v} assigned to out-of-range part {p}");
                w[p] += h.vertex_weight(v);
            }
            w
        },
    );
    let mut w = vec![0.0; k];
    for chunk_w in partials {
        for (acc, x) in w.iter_mut().zip(chunk_w) {
            *acc += x;
        }
    }
    w
}

/// Weighted edge cut of a graph partition: the sum of weights of edges
/// whose endpoints lie in different parts (each edge counted once).
pub fn edge_cut(g: &CsrGraph, part: &[PartId], k: usize) -> f64 {
    assert_eq!(part.len(), g.num_vertices());
    let mut cut = 0.0;
    for v in 0..g.num_vertices() {
        let pv = part[v];
        assert!(pv < k);
        for (&u, &w) in g.neighbors(v).iter().zip(g.edge_weights(v)) {
            if u > v && part[u] != pv {
                cut += w;
            }
        }
    }
    cut
}

/// Total migration volume between two assignments of the *same* vertex
/// set: `Σ_v size(v) · [old(v) ≠ new(v)]`.
///
/// This is exactly the cost that the repartitioning hypergraph's migration
/// nets charge (Section 3 of the paper): a moved vertex's migration net is
/// cut with connectivity 2 and contributes its cost (= the vertex size)
/// once.
pub fn migration_volume(sizes: &[f64], old: &[PartId], new: &[PartId]) -> f64 {
    assert_eq!(sizes.len(), old.len());
    assert_eq!(old.len(), new.len());
    // `+ 0.0` normalizes the empty sum's -0.0 to +0.0.
    sizes
        .iter()
        .zip(old.iter().zip(new))
        .filter(|(_, (o, n))| o != n)
        .map(|(s, _)| *s)
        .sum::<f64>()
        + 0.0
}

/// Number of vertices that change parts between two assignments.
pub fn moved_vertex_count(old: &[PartId], new: &[PartId]) -> usize {
    assert_eq!(old.len(), new.len());
    old.iter().zip(new).filter(|(o, n)| o != n).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example from Section 3 / Figure 1 of the paper:
    /// nine unit vertices in three parts, three cut nets of unit cost and
    /// connectivity two ⇒ total communication volume 3.
    #[test]
    fn paper_figure1_left_cut() {
        // Parts: {1,2,3}=0, {4,5,6}=1, {7,8,9}=2 (0-indexed: 0..3, 3..6, 6..9).
        // Cut nets (unit cost): {2,3,4}, {4,6,7}, {5,6,7} in paper numbering.
        let h = Hypergraph::from_nets_unit(
            9,
            &[
                vec![1, 2, 3], // spans parts 0 and 1
                vec![3, 5, 6], // spans parts 1 and 2
                vec![4, 5, 6], // spans parts 1 and 2
                vec![0, 1],    // internal to part 0
            ],
        );
        let part = vec![0, 0, 0, 1, 1, 1, 2, 2, 2];
        let lambda = connectivities(&h, &part, 3);
        assert_eq!(lambda, vec![2, 2, 2, 1]);
        assert_eq!(cutsize_connectivity(&h, &part, 3), 3.0);
        assert_eq!(cutsize(&h, &part, 3, CutMetric::CutNet), 3.0);
    }

    #[test]
    fn connectivity_metric_counts_lambda_minus_one() {
        // One net with cost 5 spanning 3 parts contributes 10 under k-1
        // and 5 under cut-net.
        let h = Hypergraph::from_nets(4, &[vec![0, 1, 2, 3]], vec![5.0]);
        let part = vec![0, 1, 2, 2];
        assert_eq!(cutsize(&h, &part, 3, CutMetric::Connectivity), 10.0);
        assert_eq!(cutsize(&h, &part, 3, CutMetric::CutNet), 5.0);
    }

    #[test]
    fn uncut_partition_has_zero_cut() {
        let h = Hypergraph::from_nets_unit(4, &[vec![0, 1], vec![2, 3]]);
        let part = vec![0, 0, 1, 1];
        assert_eq!(cutsize_connectivity(&h, &part, 2), 0.0);
    }

    #[test]
    fn part_weights_and_imbalance() {
        let mut h = Hypergraph::from_nets_unit(4, &[vec![0, 1, 2, 3]]);
        h.set_vertex_weight(0, 3.0);
        let part = vec![0, 0, 1, 1];
        let w = part_weights(&h, &part, 2);
        assert_eq!(w, vec![4.0, 2.0]);
        // max 4 / avg 3
        assert!((imbalance(&h, &part, 2) - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn part_loads_per_constraint() {
        use crate::VertexLoads;
        let mut h = Hypergraph::from_nets_unit(4, &[vec![0, 1, 2, 3]]);
        h.set_loads(VertexLoads::from_columns(vec![
            vec![3.0, 1.0, 1.0, 1.0],  // primary
            vec![8.0, 2.0, 4.0, 16.0], // bytes
        ]));
        let part = vec![0, 0, 1, 1];
        let loads = part_loads(&h, &part, 2);
        assert_eq!(loads[0], part_weights(&h, &part, 2));
        assert_eq!(loads[0], vec![4.0, 2.0]);
        assert_eq!(loads[1], vec![10.0, 20.0]);
        assert_eq!(aux_part_loads(&h, &part, 2), vec![vec![10.0, 20.0]]);
        let imb = imbalance_per_constraint(&h, &part, 2);
        assert_eq!(imb[0], imbalance(&h, &part, 2));
        assert!((imb[1] - 20.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn aux_part_loads_empty_at_arity_one() {
        let h = Hypergraph::from_nets_unit(3, &[vec![0, 1, 2]]);
        let part = vec![0, 1, 0];
        assert!(aux_part_loads(&h, &part, 2).is_empty());
        assert_eq!(imbalance_per_constraint(&h, &part, 2).len(), 1);
    }

    #[test]
    fn perfectly_balanced_imbalance_is_one() {
        assert_eq!(imbalance_of_weights(&[2.0, 2.0, 2.0]), 1.0);
        assert_eq!(imbalance_of_weights(&[]), 1.0);
        assert_eq!(imbalance_of_weights(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn edge_cut_counts_each_edge_once() {
        let g = CsrGraph::from_edges(3, &[(0, 1, 2.0), (1, 2, 3.0), (0, 2, 4.0)]);
        let part = vec![0, 0, 1];
        assert_eq!(edge_cut(&g, &part, 2), 3.0 + 4.0);
    }

    #[test]
    fn migration_volume_from_paper_example() {
        // Figure 1 (right): vertices 3 and 6 move, each of size 3 ⇒ 6.
        let sizes = vec![3.0; 9];
        let old = vec![0, 0, 0, 1, 1, 1, 2, 2, 2];
        let mut new = old.clone();
        new[2] = 1; // paper's vertex 3
        new[5] = 2; // paper's vertex 6
        assert_eq!(migration_volume(&sizes, &old, &new), 6.0);
        assert_eq!(moved_vertex_count(&old, &new), 2);
    }

    #[test]
    fn graph_part_weights_match() {
        let g = CsrGraph::from_edges_unit(4, &[(0, 1), (2, 3)]);
        let part = vec![0, 1, 0, 1];
        assert_eq!(graph_part_weights(&g, &part, 2), vec![2.0, 2.0]);
        assert_eq!(graph_imbalance(&g, &part, 2), 1.0);
    }

    #[test]
    #[should_panic(expected = "out-of-range part")]
    fn out_of_range_part_panics() {
        let h = Hypergraph::from_nets_unit(2, &[vec![0, 1]]);
        part_weights(&h, &[0, 5], 2);
    }

    /// Serial and parallel cut evaluation agree exactly on every thread
    /// count (the chunked-reduction rule) on a non-trivial instance.
    #[test]
    fn parallel_cut_matches_serial() {
        let nets: Vec<Vec<usize>> = (0..500)
            .map(|j| (0..(2 + j % 5)).map(|i| (j * 7 + i * 13) % 100).collect())
            .collect();
        let costs: Vec<f64> = (0..500).map(|j| 0.25 + (j % 9) as f64 * 0.5).collect();
        let h = Hypergraph::from_nets(100, &nets, costs);
        let part: Vec<usize> = (0..100).map(|v| (v * 31) % 4).collect();
        for metric in [CutMetric::Connectivity, CutMetric::CutNet] {
            let serial = cutsize(&h, &part, 4, metric);
            for threads in [1usize, 2, 3, 8] {
                let par = cutsize_par(&h, &part, 4, metric, threads);
                assert_eq!(par.to_bits(), cutsize_par(&h, &part, 4, metric, 1).to_bits());
                assert!((par - serial).abs() < 1e-9, "{metric:?} threads={threads}");
            }
        }
        for threads in [1usize, 2, 8] {
            assert_eq!(part_weights_par(&h, &part, 4, threads), part_weights(&h, &part, 4));
        }
    }

    /// Empty nets (zero pins) have connectivity 0 and contribute nothing,
    /// under both serial and parallel evaluation.
    #[test]
    fn empty_nets_contribute_nothing() {
        let h = Hypergraph::from_nets_unit(4, &[vec![], vec![0, 3], vec![]]);
        let part = vec![0, 0, 1, 1];
        assert_eq!(connectivities(&h, &part, 2), vec![0, 2, 0]);
        assert_eq!(cutsize_connectivity(&h, &part, 2), 1.0);
        for threads in [1usize, 2, 4] {
            assert_eq!(cutsize_connectivity_par(&h, &part, 2, threads), 1.0);
            assert_eq!(cutsize_par(&h, &part, 2, CutMetric::CutNet, threads), 1.0);
        }
    }

    /// Single-pin nets can never be cut: connectivity 1, zero cut.
    #[test]
    fn single_pin_nets_are_never_cut() {
        let h = Hypergraph::from_nets(3, &[vec![0], vec![1], vec![2]], vec![9.0, 9.0, 9.0]);
        let part = vec![0, 1, 2];
        assert_eq!(connectivities(&h, &part, 3), vec![1, 1, 1]);
        assert_eq!(cutsize_connectivity(&h, &part, 3), 0.0);
        assert_eq!(cutsize(&h, &part, 3, CutMetric::CutNet), 0.0);
        for threads in [1usize, 2, 4] {
            assert_eq!(cutsize_connectivity_par(&h, &part, 3, threads), 0.0);
            assert_eq!(cutsize_par(&h, &part, 3, CutMetric::CutNet, threads), 0.0);
        }
    }

    /// Zero total vertex weight: imbalance degrades gracefully to 1.0 and
    /// parallel part weights still sum correctly.
    #[test]
    fn zero_total_weight_imbalance_is_one() {
        let mut h = Hypergraph::from_nets_unit(4, &[vec![0, 1], vec![1, 2, 3]]);
        for v in 0..4 {
            h.set_vertex_weight(v, 0.0);
        }
        let part = vec![0, 1, 0, 1];
        assert_eq!(imbalance(&h, &part, 2), 1.0);
        for threads in [1usize, 2, 4] {
            let w = part_weights_par(&h, &part, 2, threads);
            assert_eq!(w, vec![0.0, 0.0]);
            assert_eq!(imbalance_of_weights(&w), 1.0);
            // The cut is still well-defined with weightless vertices.
            assert!(cutsize_connectivity_par(&h, &part, 2, threads) > 0.0);
        }
    }

    /// A hypergraph with no nets at all: zero cut at any thread count.
    #[test]
    fn netless_hypergraph_has_zero_cut() {
        let h = Hypergraph::from_nets_unit(5, &[]);
        let part = vec![0, 1, 0, 1, 0];
        assert_eq!(cutsize_connectivity(&h, &part, 2), 0.0);
        for threads in [1usize, 2, 4] {
            assert_eq!(cutsize_connectivity_par(&h, &part, 2, threads), 0.0);
        }
    }
}
