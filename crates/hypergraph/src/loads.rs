//! Typed multi-constraint vertex loads.
//!
//! Production placement balances several resources at once — CPU work,
//! memory footprint, bandwidth — so a vertex carries a small fixed-arity
//! *load vector* rather than a single scalar weight. [`VertexLoads`]
//! stores those vectors in structure-of-arrays (column-major) layout:
//! constraint `c`'s values for all `n` vertices are the contiguous slice
//! `data[c*n .. (c+1)*n]`. Constraint `0` is the *primary* load — the
//! computational weight every existing scalar code path reads — which
//! makes arity 1 a zero-cost fast path: the backing vector is exactly
//! the old `Vec<f64>` of weights, element for element.

use std::fmt;

/// A fixed-arity resource-vector assignment for `n` vertices.
///
/// Invariants: `arity >= 1`, `data.len() == arity * n`, every entry is
/// finite and non-negative (enforced by the mutating methods; bulk
/// constructors assert).
#[derive(Clone, PartialEq)]
pub struct VertexLoads {
    arity: usize,
    n: usize,
    /// Column-major: `data[c * n + v]` is constraint `c` of vertex `v`.
    data: Vec<f64>,
}

impl VertexLoads {
    /// Arity-1 loads of `1.0` for every vertex (the default weights).
    pub fn ones(n: usize) -> Self {
        VertexLoads { arity: 1, n, data: vec![1.0; n] }
    }

    /// Zero loads at the given arity.
    ///
    /// # Panics
    /// Panics if `arity == 0`.
    pub fn zeros(arity: usize, n: usize) -> Self {
        assert!(arity >= 1, "load arity must be at least 1");
        VertexLoads { arity, n, data: vec![0.0; arity * n] }
    }

    /// Wraps a scalar weight vector as arity-1 loads (zero-copy).
    ///
    /// # Panics
    /// Panics on a negative or non-finite entry.
    pub fn from_scalar(weights: Vec<f64>) -> Self {
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "loads must be finite and non-negative"
        );
        let n = weights.len();
        VertexLoads { arity: 1, n, data: weights }
    }

    /// Builds loads from one column per constraint (`columns[c][v]`).
    ///
    /// # Panics
    /// Panics if `columns` is empty, the columns disagree in length, or
    /// any entry is negative or non-finite.
    pub fn from_columns(columns: Vec<Vec<f64>>) -> Self {
        assert!(!columns.is_empty(), "need at least one constraint column");
        let n = columns[0].len();
        assert!(columns.iter().all(|c| c.len() == n), "constraint columns must agree in length");
        let arity = columns.len();
        let mut data = Vec::with_capacity(arity * n);
        for col in columns {
            assert!(
                col.iter().all(|w| w.is_finite() && *w >= 0.0),
                "loads must be finite and non-negative"
            );
            data.extend(col);
        }
        VertexLoads { arity, n, data }
    }

    /// Number of balance constraints carried per vertex.
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when there are no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Constraint `c` of vertex `v`.
    #[inline]
    pub fn get(&self, v: usize, c: usize) -> f64 {
        self.data[c * self.n + v]
    }

    /// Sets constraint `c` of vertex `v`.
    ///
    /// # Panics
    /// Panics on a negative or non-finite value.
    #[inline]
    pub fn set(&mut self, v: usize, c: usize, w: f64) {
        assert!(w.is_finite() && w >= 0.0, "loads must be finite and non-negative");
        self.data[c * self.n + v] = w;
    }

    /// The primary (constraint-0) load column — the scalar weights every
    /// single-constraint code path reads.
    #[inline]
    pub fn scalar(&self) -> &[f64] {
        &self.data[..self.n]
    }

    /// The load column of constraint `c`.
    #[inline]
    pub fn constraint(&self, c: usize) -> &[f64] {
        &self.data[c * self.n..(c + 1) * self.n]
    }

    /// Sum of constraint `c` over all vertices.
    pub fn total(&self, c: usize) -> f64 {
        self.constraint(c).iter().sum()
    }

    /// Per-constraint totals, indexed by constraint.
    pub fn totals(&self) -> Vec<f64> {
        (0..self.arity).map(|c| self.total(c)).collect()
    }

    /// Checks the representation invariants (used by
    /// `Hypergraph::validate`).
    pub fn validate(&self) -> Result<(), String> {
        if self.arity == 0 {
            return Err("load arity must be at least 1".into());
        }
        if self.data.len() != self.arity * self.n {
            return Err("load storage must be arity * num_vertices entries".into());
        }
        if self.data.iter().any(|&x| x < 0.0 || !x.is_finite()) {
            return Err("loads must be finite and non-negative".into());
        }
        Ok(())
    }
}

impl fmt::Debug for VertexLoads {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VertexLoads")
            .field("arity", &self.arity)
            .field("len", &self.n)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip_is_identity() {
        let w = vec![1.0, 2.5, 0.0, 4.0];
        let loads = VertexLoads::from_scalar(w.clone());
        assert_eq!(loads.arity(), 1);
        assert_eq!(loads.len(), 4);
        assert_eq!(loads.scalar(), &w[..]);
        assert_eq!(loads.constraint(0), &w[..]);
        assert_eq!(loads.total(0), 7.5);
    }

    #[test]
    fn columns_layout_is_soa() {
        let loads = VertexLoads::from_columns(vec![vec![1.0, 2.0], vec![10.0, 20.0]]);
        assert_eq!(loads.arity(), 2);
        assert_eq!(loads.get(0, 0), 1.0);
        assert_eq!(loads.get(1, 0), 2.0);
        assert_eq!(loads.get(0, 1), 10.0);
        assert_eq!(loads.get(1, 1), 20.0);
        assert_eq!(loads.scalar(), &[1.0, 2.0]);
        assert_eq!(loads.constraint(1), &[10.0, 20.0]);
        assert_eq!(loads.totals(), vec![3.0, 30.0]);
    }

    #[test]
    fn set_and_get() {
        let mut loads = VertexLoads::zeros(2, 3);
        loads.set(1, 1, 5.0);
        assert_eq!(loads.get(1, 1), 5.0);
        assert_eq!(loads.get(1, 0), 0.0);
        loads.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_load_rejected() {
        let mut loads = VertexLoads::ones(2);
        loads.set(0, 0, -1.0);
    }

    #[test]
    #[should_panic(expected = "agree in length")]
    fn ragged_columns_rejected() {
        let _ = VertexLoads::from_columns(vec![vec![1.0, 2.0], vec![1.0]]);
    }
}
