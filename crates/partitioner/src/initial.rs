//! Coarse partitioning (Section 4.2).
//!
//! The coarsest hypergraph is partitioned by **randomized greedy
//! hypergraph growing** (GHG): parts are grown one at a time from seed
//! vertices — the part's fixed vertices if it has any, otherwise a random
//! free vertex — absorbing the unassigned vertex with the highest
//! affinity to the growing part until the part reaches its target weight.
//! Several attempts with different random seeds are made and the best
//! (lowest k-1 cut, ties broken by balance) wins, mirroring Zoltan's
//! "every processor computes a different coarse partition and the best is
//! kept".
//!
//! Fixed coarse vertices are pre-assigned to their parts and never
//! reconsidered.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use dlb_hypergraph::{metrics, Hypergraph, PartId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::config::{InitialConfig, PartTargets};
use crate::fixed::FixedAssignment;

const UNASSIGNED: usize = usize::MAX;

/// Auxiliary part-load tracker for the construction heuristics. For
/// scalar targets it holds no storage and every method is a no-op, so
/// the arity-1 pipeline performs no additional float operations.
struct AuxTracker {
    /// `weights[(c-1)*k + p]`; empty for scalar targets.
    weights: Vec<f64>,
    k: usize,
}

impl AuxTracker {
    /// Tracker seeded from the already-assigned entries of `part`.
    fn new(h: &Hypergraph, targets: &PartTargets, part: &[PartId]) -> Self {
        let k = targets.k();
        let mut weights = Vec::new();
        if !targets.aux.is_empty() {
            weights = vec![0.0f64; targets.aux.len() * k];
            for c in 1..=targets.aux.len() {
                let col = h.loads().constraint(c);
                let row = &mut weights[(c - 1) * k..c * k];
                for (v, &p) in part.iter().enumerate() {
                    if p != UNASSIGNED {
                        row[p] += col[v];
                    }
                }
            }
        }
        AuxTracker { weights, k }
    }

    /// Records the assignment of `v` to `p`.
    #[inline]
    fn add(&mut self, h: &Hypergraph, v: usize, p: PartId) {
        if !self.weights.is_empty() {
            for c in 1..=self.weights.len() / self.k {
                self.weights[(c - 1) * self.k + p] += h.vertex_load(v, c);
            }
        }
    }

    /// True when assigning `v` to `p` keeps every auxiliary cap.
    #[inline]
    fn fits(&self, h: &Hypergraph, targets: &PartTargets, v: usize, p: PartId) -> bool {
        for (i, a) in targets.aux.iter().enumerate() {
            if self.weights[i * self.k + p] + h.vertex_load(v, i + 1) > a.cap(p) {
                return false;
            }
        }
        true
    }
}

/// Nets larger than this are ignored when computing growing affinities.
/// A hub net's per-pin contribution (`cost / (s - 1)`) is noise, but its
/// first scan would flood the frontier heap with thousands of
/// equal-affinity pins — power-law coarse levels keep multi-thousand-pin
/// nets. The same reasoning caps FM delta updates
/// (`refine::MAX_NET_SIZE_FOR_UPDATES`).
const MAX_NET_SIZE_FOR_AFFINITY: usize = 400;

/// A heap candidate ordered by affinity (then by vertex id for
/// determinism).
struct Cand {
    affinity: f64,
    v: usize,
}

impl PartialEq for Cand {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Cand {}
impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Cand {
    fn cmp(&self, other: &Self) -> Ordering {
        self.affinity
            .total_cmp(&other.affinity)
            .then_with(|| other.v.cmp(&self.v))
    }
}

/// One GHG attempt. Returns a complete assignment.
fn greedy_growing(
    h: &Hypergraph,
    targets: &PartTargets,
    fixed: &FixedAssignment,
    rng: &mut StdRng,
) -> Vec<PartId> {
    dlb_trace::count(dlb_trace::Counter::InitialGhgSeeds, 1);
    let n = h.num_vertices();
    let k = targets.k();
    let mut part = vec![UNASSIGNED; n];
    let mut weights = vec![0.0f64; k];
    for v in 0..n {
        if let Some(p) = fixed.get(v) {
            part[v] = p;
            weights[p] += h.vertex_weight(v);
        }
    }

    let mut aux = AuxTracker::new(h, targets, &part);
    let mut affinity = vec![0.0f64; n];
    let mut unassigned_order: Vec<usize> = (0..n).filter(|&v| part[v] == UNASSIGNED).collect();
    unassigned_order.shuffle(rng);
    let mut cursor = 0usize; // next random seed candidate

    // Each net distributes its affinity once per grown part, when its
    // first pin is absorbed; absorbing further pins of the same net adds
    // nothing. Rescanning on every absorption instead would cost
    // `O(size^2)` per net and part — quadratic whenever coarsening
    // stalls on a large power-law level. `net_stamp[j] == p` marks net
    // `j` as spent for part `p`.
    let mut net_stamp = vec![usize::MAX; h.num_nets()];

    // Grow parts 0..k-1; whatever remains lands in part k-1 (and, if that
    // would overflow, spills to the lightest part).
    for p in 0..k.saturating_sub(1) {
        // Reset affinities from the previous part.
        affinity.iter_mut().for_each(|a| *a = 0.0);
        let mut heap: BinaryHeap<Cand> = BinaryHeap::new();

        let bump_neighbors = |v: usize,
                              affinity: &mut Vec<f64>,
                              heap: &mut BinaryHeap<Cand>,
                              part: &Vec<usize>,
                              net_stamp: &mut Vec<usize>| {
            for &j in h.vertex_nets(v) {
                if net_stamp[j] == p {
                    continue;
                }
                net_stamp[j] = p;
                let size = h.net_size(j);
                if !(2..=MAX_NET_SIZE_FOR_AFFINITY).contains(&size) {
                    continue;
                }
                let contrib = h.net_cost(j) / (size - 1) as f64;
                for &w in h.net(j) {
                    if part[w] == UNASSIGNED {
                        affinity[w] += contrib;
                        heap.push(Cand { affinity: affinity[w], v: w });
                    }
                }
            }
        };

        // Seed from the part's fixed vertices (their neighborhoods).
        for v in 0..n {
            if fixed.get(v) == Some(p) {
                bump_neighbors(v, &mut affinity, &mut heap, &part, &mut net_stamp);
            }
        }

        while weights[p] < targets.target[p] {
            // Pop the best live candidate; entries are lazy, so skip
            // assigned or stale ones.
            let next = loop {
                match heap.pop() {
                    Some(c) => {
                        if part[c.v] != UNASSIGNED {
                            continue;
                        }
                        if (c.affinity - affinity[c.v]).abs() > 1e-12 {
                            heap.push(Cand { affinity: affinity[c.v], v: c.v });
                            continue;
                        }
                        break Some(c.v);
                    }
                    None => break None,
                }
            };
            let v = match next {
                Some(v) => v,
                None => {
                    // Frontier exhausted: restart from a random seed.
                    while cursor < unassigned_order.len()
                        && part[unassigned_order[cursor]] != UNASSIGNED
                    {
                        cursor += 1;
                    }
                    match unassigned_order.get(cursor) {
                        Some(&v) => v,
                        None => break, // nothing left anywhere
                    }
                }
            };
            part[v] = p;
            weights[p] += h.vertex_weight(v);
            aux.add(h, v, p);
            bump_neighbors(v, &mut affinity, &mut heap, &part, &mut net_stamp);
        }
    }

    // Remainder goes to the last part unless that would bust its cap
    // (on any constraint) and some lighter part can take it.
    for v in 0..n {
        if part[v] == UNASSIGNED {
            let w = h.vertex_weight(v);
            let last = k - 1;
            let p = if weights[last] + w <= targets.cap(last) && aux.fits(h, targets, v, last) {
                last
            } else {
                (0..k)
                    .min_by(|&a, &b| {
                        (weights[a] + w - targets.target[a])
                            .total_cmp(&(weights[b] + w - targets.target[b]))
                    })
                    .unwrap()
            };
            part[v] = p;
            weights[p] += w;
            aux.add(h, v, p);
        }
    }
    part
}

/// Fixed-affinity assignment: each free vertex joins the part whose
/// *fixed* vertices it shares the most net weight with (subject to
/// caps), strongest affinities first; vertices with no affinity go to
/// the part with the most spare capacity.
///
/// For the repartitioning hypergraph of Section 3 this attempt is
/// exactly "start from the old partition": every computation vertex's
/// migration net ties it to its old part's fixed partition vertex, so
/// the attempt reproduces the previous assignment (rebalanced), which is
/// precisely the low-migration corner of the search space. GHG attempts
/// explore the low-communication corner; best-of-N picks per α.
fn fixed_affinity(
    h: &Hypergraph,
    targets: &PartTargets,
    fixed: &FixedAssignment,
    rng: &mut StdRng,
) -> Vec<PartId> {
    let n = h.num_vertices();
    let k = targets.k();
    let mut part = vec![UNASSIGNED; n];
    let mut weights = vec![0.0f64; k];
    for v in 0..n {
        if let Some(p) = fixed.get(v) {
            part[v] = p;
            weights[p] += h.vertex_weight(v);
        }
    }

    let mut aux = AuxTracker::new(h, targets, &part);
    // Affinity of every free vertex to every part with fixed pins.
    let mut affinity = vec![0.0f64; n * k];
    for j in 0..h.num_nets() {
        let size = h.net_size(j);
        if size < 2 {
            continue;
        }
        let contrib = h.net_cost(j) / (size - 1) as f64;
        // Parts of the fixed pins of this net.
        for &u in h.net(j) {
            if let Some(p) = fixed.get(u) {
                for &v in h.net(j) {
                    if fixed.get(v).is_none() {
                        affinity[v * k + p] += contrib;
                    }
                }
            }
        }
    }

    // Strongest-affinity-first assignment under caps.
    let mut order: Vec<(f64, usize)> = (0..n)
        .filter(|&v| part[v] == UNASSIGNED)
        .map(|v| {
            let best = (0..k).map(|p| affinity[v * k + p]).fold(0.0, f64::max);
            (best, v)
        })
        .collect();
    order.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    let mut leftovers = Vec::new();
    for &(best, v) in &order {
        let w = h.vertex_weight(v);
        let choice = if best > 0.0 {
            (0..k)
                .filter(|&p| weights[p] + w <= targets.cap(p) && aux.fits(h, targets, v, p))
                .max_by(|&a, &b| affinity[v * k + a].total_cmp(&affinity[v * k + b]))
        } else {
            None
        };
        match choice {
            Some(p) => {
                part[v] = p;
                weights[p] += w;
                aux.add(h, v, p);
            }
            None => leftovers.push(v),
        }
    }
    for v in leftovers {
        let w = h.vertex_weight(v);
        let p = (0..k)
            .min_by(|&a, &b| {
                (weights[a] + w - targets.target[a]).total_cmp(&(weights[b] + w - targets.target[b]))
            })
            .unwrap();
        part[v] = p;
        weights[p] += w;
        aux.add(h, v, p);
    }
    let _ = rng;
    part
}

/// Random balanced assignment: free vertices visit in random order and
/// join the part with the most remaining target capacity.
fn random_balanced(
    h: &Hypergraph,
    targets: &PartTargets,
    fixed: &FixedAssignment,
    rng: &mut StdRng,
) -> Vec<PartId> {
    let n = h.num_vertices();
    let k = targets.k();
    let mut part = vec![UNASSIGNED; n];
    let mut weights = vec![0.0f64; k];
    for v in 0..n {
        if let Some(p) = fixed.get(v) {
            part[v] = p;
            weights[p] += h.vertex_weight(v);
        }
    }
    let mut order: Vec<usize> = (0..n).filter(|&v| part[v] == UNASSIGNED).collect();
    order.shuffle(rng);
    for v in order {
        let p = (0..k)
            .min_by(|&a, &b| {
                (weights[a] - targets.target[a]).total_cmp(&(weights[b] - targets.target[b]))
            })
            .unwrap();
        part[v] = p;
        weights[p] += h.vertex_weight(v);
    }
    part
}

/// Scores an assignment: k-1 cut plus a large penalty for exceeding the
/// balance caps — on any constraint — so a feasible worse-cut solution
/// beats an infeasible better-cut one. The auxiliary term is gated, so
/// scalar scores are bit-identical to the single-constraint formula.
pub fn score(h: &Hypergraph, part: &[PartId], targets: &PartTargets) -> f64 {
    let k = targets.k();
    let cut = metrics::cutsize_connectivity(h, part, k);
    let weights = metrics::part_weights(h, part, k);
    let mut violation = (targets.violation(&weights) - targets.epsilon).max(0.0);
    if !targets.aux.is_empty() {
        let aux_loads = metrics::aux_part_loads(h, part, k);
        for (a, row) in targets.aux.iter().zip(&aux_loads) {
            violation += (a.violation(row) - a.epsilon).max(0.0);
        }
    }
    let total_cost: f64 = h.net_costs().iter().sum();
    cut + violation * (1.0 + total_cost)
}

/// Computes the best coarse partition over `cfg.num_attempts` randomized
/// attempts (GHG, plus one random-balanced attempt as a safety net).
pub fn initial_partition(
    h: &Hypergraph,
    targets: &PartTargets,
    fixed: &FixedAssignment,
    cfg: &InitialConfig,
    rng: &mut StdRng,
) -> Vec<PartId> {
    let _span = dlb_trace::span!(
        "initial",
        vertices = h.num_vertices(),
        attempts = cfg.num_attempts.max(1),
    );
    let mut best: Option<(f64, Vec<PartId>)> = None;
    let attempts = cfg.num_attempts.max(1);
    for _ in 0..attempts {
        let mut attempt_rng = StdRng::seed_from_u64(rng.gen());
        let part = greedy_growing(h, targets, fixed, &mut attempt_rng);
        let s = score(h, &part, targets);
        if best.as_ref().is_none_or(|(bs, _)| s < *bs) {
            best = Some((s, part));
        }
    }
    let mut rb_rng = StdRng::seed_from_u64(rng.gen());
    let part = random_balanced(h, targets, fixed, &mut rb_rng);
    let s = score(h, &part, targets);
    if best.as_ref().is_none_or(|(bs, _)| s < *bs) {
        best = Some((s, part));
    }
    // With fixed vertices present, also try staying close to them (the
    // low-migration corner for the repartitioning model).
    if fixed.num_fixed() > 0 {
        let mut fa_rng = StdRng::seed_from_u64(rng.gen());
        let part = fixed_affinity(h, targets, fixed, &mut fa_rng);
        let s = score(h, &part, targets);
        if best.as_ref().is_none_or(|(bs, _)| s < *bs) {
            best = Some((s, part));
        }
    }
    best.expect("at least one attempt").1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn targets(h: &Hypergraph, k: usize) -> PartTargets {
        PartTargets::uniform(h.total_vertex_weight(), k, 0.05)
    }

    #[test]
    fn assignment_is_complete_and_in_range() {
        let h = crate::tests::random_hypergraph(60, 120, 4, 3);
        let t = targets(&h, 4);
        let fixed = FixedAssignment::free(60);
        let mut rng = StdRng::seed_from_u64(0);
        let part = initial_partition(&h, &t, &fixed, &InitialConfig::default(), &mut rng);
        assert_eq!(part.len(), 60);
        assert!(part.iter().all(|&p| p < 4));
    }

    #[test]
    fn fixed_vertices_stay_put() {
        let h = crate::tests::grid_hypergraph(6, 6);
        let t = targets(&h, 3);
        let mut fixed = FixedAssignment::free(36);
        fixed.fix(0, 2);
        fixed.fix(35, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let part = initial_partition(&h, &t, &fixed, &InitialConfig::default(), &mut rng);
        assert_eq!(part[0], 2);
        assert_eq!(part[35], 0);
    }

    #[test]
    fn balance_is_respected_on_uniform_graph() {
        let h = crate::tests::grid_hypergraph(10, 10);
        let t = targets(&h, 4);
        let fixed = FixedAssignment::free(100);
        let mut rng = StdRng::seed_from_u64(2);
        let part = initial_partition(&h, &t, &fixed, &InitialConfig::default(), &mut rng);
        let w = metrics::part_weights(&h, &part, 4);
        // GHG on unit weights should be close to target; allow one vertex
        // of slack beyond the cap.
        for p in 0..4 {
            assert!(w[p] <= t.cap(p) + 1.0, "part {p} weight {}", w[p]);
        }
    }

    #[test]
    fn ghg_finds_the_obvious_split() {
        // Two cliques of 2-pin nets joined weakly: the grown part should
        // be one clique.
        let mut nets: Vec<Vec<usize>> = Vec::new();
        for i in 0..5 {
            for j in i + 1..5 {
                nets.push(vec![i, j]);
                nets.push(vec![5 + i, 5 + j]);
            }
        }
        nets.push(vec![4, 5]);
        let h = Hypergraph::from_nets_unit(10, &nets);
        let t = targets(&h, 2);
        let fixed = FixedAssignment::free(10);
        let mut rng = StdRng::seed_from_u64(4);
        let part = initial_partition(&h, &t, &fixed, &InitialConfig { num_attempts: 8 }, &mut rng);
        let cut = metrics::cutsize_connectivity(&h, &part, 2);
        assert_eq!(cut, 1.0, "only the weak joiner should be cut, got {cut}");
    }

    #[test]
    fn proportional_targets_are_honored() {
        let h = crate::tests::grid_hypergraph(8, 8);
        let t = PartTargets::proportional(h.total_vertex_weight(), &[3, 1], 0.05);
        let fixed = FixedAssignment::free(64);
        let mut rng = StdRng::seed_from_u64(5);
        let part = initial_partition(&h, &t, &fixed, &InitialConfig::default(), &mut rng);
        let w = metrics::part_weights(&h, &part, 2);
        assert!(w[0] > w[1], "side 0 should carry ~3/4 of the weight: {w:?}");
        assert!((w[0] - 48.0).abs() <= 8.0, "side 0 weight {}", w[0]);
    }

    #[test]
    fn score_penalizes_imbalance() {
        let h = crate::tests::grid_hypergraph(4, 4);
        let t = targets(&h, 2);
        let balanced: Vec<usize> = (0..16).map(|v| v / 8).collect();
        let lopsided = vec![0usize; 16];
        assert!(score(&h, &balanced, &t) < score(&h, &lopsided, &t));
    }

    #[test]
    fn fixed_affinity_reconstructs_old_partition() {
        // Build a miniature repartitioning-hypergraph shape: two fixed
        // "partition vertices" (4, 5) with migration nets tying each free
        // vertex to its old part. The fixed-affinity attempt should win
        // (migration nets are the dominant cost) and reproduce old parts.
        let mut b = dlb_hypergraph::HypergraphBuilder::new(6);
        // Old parts: 0,1 -> part 0 (vertex 4); 2,3 -> part 1 (vertex 5).
        b.add_net(10.0, [0, 4]);
        b.add_net(10.0, [1, 4]);
        b.add_net(10.0, [2, 5]);
        b.add_net(10.0, [3, 5]);
        // A weak "communication" net pulling 1 and 2 together.
        b.add_net(1.0, [1, 2]);
        b.set_vertex_weight(4, 0.0);
        b.set_vertex_weight(5, 0.0);
        let h = b.build();
        let mut fixed = FixedAssignment::free(6);
        fixed.fix(4, 0);
        fixed.fix(5, 1);
        let t = PartTargets::uniform(4.0, 2, 0.05);
        let mut rng = StdRng::seed_from_u64(3);
        let part = initial_partition(&h, &t, &fixed, &InitialConfig::default(), &mut rng);
        assert_eq!(&part[..4], &[0, 0, 1, 1], "free vertices should stay home");
    }

    #[test]
    fn fixed_affinity_respects_caps() {
        // All free vertices prefer part 0, but the cap forces spill.
        let mut b = dlb_hypergraph::HypergraphBuilder::new(7);
        for v in 0..6 {
            b.add_net(5.0, [v, 6]);
        }
        b.set_vertex_weight(6, 0.0);
        let h = b.build();
        let mut fixed = FixedAssignment::free(7);
        fixed.fix(6, 0);
        let t = PartTargets::uniform(6.0, 2, 0.05);
        let mut rng = StdRng::seed_from_u64(4);
        let part = initial_partition(&h, &t, &fixed, &InitialConfig { num_attempts: 2 }, &mut rng);
        let w = metrics::part_weights(&h, &part, 2);
        assert!(w[0] <= t.cap(0) + 1.0, "part 0 overfull: {w:?}");
        assert!(w[1] > 0.0, "spill must land somewhere: {w:?}");
    }

    #[test]
    fn all_vertices_fixed_is_identity() {
        let h = crate::tests::grid_hypergraph(4, 4);
        let t = targets(&h, 2);
        let opts: Vec<Option<usize>> = (0..16).map(|v| Some(v % 2)).collect();
        let fixed = FixedAssignment::from_options(&opts);
        let mut rng = StdRng::seed_from_u64(6);
        let part = initial_partition(&h, &t, &fixed, &InitialConfig::default(), &mut rng);
        for v in 0..16 {
            assert_eq!(part[v], v % 2);
        }
    }
}
