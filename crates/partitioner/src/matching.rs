//! Inner-product matching (IPM) with fixed-vertex constraints.
//!
//! IPM — PaToH's *heavy-connectivity matching*, later adopted by hMETIS
//! and Mondriaan — scores a candidate pair `(u, v)` by the inner product
//! of their net-incidence vectors: the sum over shared nets of the net's
//! contribution. With `scaled_ipm` the contribution of net `n` is
//! `c_n / (|n| − 1)`, favoring small tightly-coupled nets; unscaled it is
//! plain `c_n`.
//!
//! Greedy first-choice matching visits vertices in random order; each
//! unmatched vertex matches its best-scoring unmatched neighbor that is
//! *compatible* (not fixed to a different part — Section 4.1's
//! constraint). Scores for incompatible pairs are still computed and then
//! discarded at selection time, mirroring the paper's "compute all match
//! scores including infeasible ones, select a feasible best" strategy
//! (which it reports adds only insignificant overhead).
//!
//! # Parallel scoring
//!
//! The expensive part — accumulating inner products over shared nets —
//! depends only on the hypergraph, never on the evolving matching state
//! (the `mate` filter is applied when a vertex is *selected*, and a
//! pair's score is a constant). [`ipm_matching_threads`] therefore
//! precomputes every vertex's candidate list (partner, score) across
//! worker threads in first-touch order, then runs the greedy selection
//! serially over the shuffled visit order, skipping already-matched
//! candidates. Because a filtered subsequence preserves order and scores
//! are pair constants, the result is **bit-identical** to the serial
//! matcher at any thread count.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use dlb_hypergraph::{parallel, Hypergraph};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use crate::config::{CoarseningConfig, Determinism};
use crate::fixed::FixedAssignment;

/// A matching: `mate[v] == v` for unmatched vertices, otherwise the
/// partner (symmetric: `mate[mate[v]] == v`).
#[derive(Clone, Debug)]
pub struct Matching {
    /// Partner per vertex (self for unmatched).
    pub mate: Vec<usize>,
    /// Number of matched pairs.
    pub num_pairs: usize,
}

impl Matching {
    /// Number of coarse vertices this matching produces.
    pub fn coarse_count(&self) -> usize {
        self.mate.len() - self.num_pairs
    }

    /// Validates symmetry and fixed-compatibility.
    pub fn validate(&self, fixed: &FixedAssignment) -> Result<(), String> {
        if self.mate.len() != fixed.len() {
            return Err("matching length mismatch".into());
        }
        let mut pairs = 0;
        for (v, &m) in self.mate.iter().enumerate() {
            if m >= self.mate.len() {
                return Err(format!("vertex {v} matched out of range"));
            }
            if self.mate[m] != v {
                return Err(format!("matching not symmetric at {v}"));
            }
            if m != v {
                pairs += 1;
                if !fixed.compatible(v, m) {
                    return Err(format!("vertices {v} and {m} fixed to different parts"));
                }
            }
        }
        if pairs != 2 * self.num_pairs {
            return Err("pair count mismatch".into());
        }
        Ok(())
    }
}

/// Computes a greedy first-choice IPM matching of `h` honoring `fixed`.
///
/// `rng` drives the visit order; equal seeds give identical matchings.
pub fn ipm_matching(
    h: &Hypergraph,
    fixed: &FixedAssignment,
    cfg: &CoarseningConfig,
    rng: &mut StdRng,
) -> Matching {
    ipm_matching_restricted(h, fixed, None, cfg, rng)
}

/// [`ipm_matching`] with an optional part restriction: when `parts` is
/// `Some`, two vertices may only match if they currently share a part.
/// Used by V-cycle iterations (re-coarsening must keep the current
/// partition representable, exactly like adaptive graph coarsening).
pub fn ipm_matching_restricted(
    h: &Hypergraph,
    fixed: &FixedAssignment,
    parts: Option<&[usize]>,
    cfg: &CoarseningConfig,
    rng: &mut StdRng,
) -> Matching {
    ipm_matching_threads(h, fixed, parts, cfg, rng, 1)
}

/// [`ipm_matching_restricted`] with an explicit worker-thread count.
///
/// `threads == 1` runs the exact serial greedy matcher; `threads > 1`
/// precomputes candidate scores in parallel and selects serially, which
/// provably produces the same matching (see the module docs). The RNG is
/// advanced identically on every path.
pub fn ipm_matching_threads(
    h: &Hypergraph,
    fixed: &FixedAssignment,
    parts: Option<&[usize]>,
    cfg: &CoarseningConfig,
    rng: &mut StdRng,
    threads: usize,
) -> Matching {
    let n = h.num_vertices();
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);

    // Effective (not requested) concurrency: the parallel path is
    // bit-identical but pays for materializing every vertex's candidate
    // list — worth it only when the scoring pass actually runs on more
    // than one core.
    if parallel::effective_concurrency(threads) > 1 {
        return ipm_matching_parallel(h, fixed, parts, cfg, &order, threads);
    }

    let mut mate: Vec<usize> = (0..n).collect();
    let mut num_pairs = 0;

    // Deterministic trace tallies (emitted once at the end): pins walked
    // while scoring visited-unmatched vertices, and candidates refused
    // for fixed-part incompatibility. Both are defined on the serial
    // control flow, which the parallel path reproduces exactly.
    let mut pins_scanned = 0u64;
    let mut refused_fixed = 0u64;

    // Sparse score accumulator: scores[w] for candidate partners w of the
    // current vertex, reset via the touched list. Arena-backed: the
    // O(n) buffer is reused across matching calls on this thread.
    let mut scores = parallel::scratch_vec_filled::<f64>(n, 0.0);
    let mut touched = parallel::scratch_vec::<usize>();

    for &u in &order {
        if mate[u] != u {
            continue;
        }
        touched.clear();
        for &j in h.vertex_nets(u) {
            let size = h.net_size(j);
            if size < 2 || size > cfg.max_net_size_for_matching {
                continue;
            }
            let contrib = if cfg.scaled_ipm {
                h.net_cost(j) / (size - 1) as f64
            } else {
                h.net_cost(j)
            };
            if contrib <= 0.0 {
                continue;
            }
            pins_scanned += size as u64;
            for &w in h.net(j) {
                if w == u || mate[w] != w {
                    continue;
                }
                if scores[w] == 0.0 {
                    touched.push(w);
                }
                scores[w] += contrib;
            }
        }
        // Select the best *compatible* candidate (infeasible scores were
        // computed but are skipped here, as in the paper).
        let mut best: Option<usize> = None;
        let mut best_score = 0.0;
        for &w in touched.iter() {
            let s = scores[w];
            scores[w] = 0.0;
            if !fixed.compatible(u, w) {
                refused_fixed += 1;
                continue;
            }
            if s > best_score && parts.is_none_or(|p| p[u] == p[w]) {
                best_score = s;
                best = Some(w);
            }
        }
        if let Some(w) = best {
            mate[u] = w;
            mate[w] = u;
            num_pairs += 1;
        }
    }

    dlb_trace::count(dlb_trace::Counter::CoarsenPinsScanned, pins_scanned);
    dlb_trace::count(dlb_trace::Counter::CoarsenMatchesRefusedFixed, refused_fixed);
    dlb_trace::count(dlb_trace::Counter::CoarsenMatchesAccepted, num_pairs as u64);
    Matching { mate, num_pairs }
}

/// Chunk size for parallel candidate scoring: scoring a vertex walks all
/// of its nets' pins, so chunks are much smaller than the generic
/// [`parallel::DEFAULT_CHUNK`] to keep worker load even.
const SCORE_CHUNK: usize = 256;

/// Parallel path of [`ipm_matching_threads`]: score every vertex's
/// candidates across workers (state-independent), then select serially.
fn ipm_matching_parallel(
    h: &Hypergraph,
    fixed: &FixedAssignment,
    parts: Option<&[usize]>,
    cfg: &CoarseningConfig,
    order: &[usize],
    threads: usize,
) -> Matching {
    let n = h.num_vertices();

    // Per-vertex candidate lists (partner, inner-product score) in
    // first-touch order — exactly the order the serial matcher's
    // `touched` list would hold with no vertices matched yet — plus the
    // pins each vertex's scoring pass walks (tallied only for vertices
    // the selection loop visits unmatched, matching the serial count).
    let per_chunk = parallel::map_chunks_with(
        threads,
        n,
        SCORE_CHUNK,
        // Arena-backed per-worker buffers: pool workers are persistent,
        // so the O(n) score accumulator is allocated once per worker per
        // process, not once per matching call.
        || (parallel::scratch_vec_filled::<f64>(n, 0.0), parallel::scratch_vec::<usize>()),
        |(scores, touched), _, range| {
            let mut lists: Vec<(Vec<(usize, f64)>, u64)> = Vec::with_capacity(range.len());
            for u in range {
                touched.clear();
                let mut pins_u = 0u64;
                for &j in h.vertex_nets(u) {
                    let size = h.net_size(j);
                    if size < 2 || size > cfg.max_net_size_for_matching {
                        continue;
                    }
                    let contrib = if cfg.scaled_ipm {
                        h.net_cost(j) / (size - 1) as f64
                    } else {
                        h.net_cost(j)
                    };
                    if contrib <= 0.0 {
                        continue;
                    }
                    pins_u += size as u64;
                    for &w in h.net(j) {
                        if w == u {
                            continue;
                        }
                        if scores[w] == 0.0 {
                            touched.push(w);
                        }
                        scores[w] += contrib;
                    }
                }
                let list: Vec<(usize, f64)> = touched.iter().map(|&w| {
                    let s = scores[w];
                    scores[w] = 0.0;
                    (w, s)
                }).collect();
                lists.push((list, pins_u));
            }
            lists
        },
    );
    let mut cands: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
    let mut scan: Vec<u64> = Vec::with_capacity(n);
    for chunk in per_chunk {
        for (list, pins_u) in chunk {
            cands.push(list);
            scan.push(pins_u);
        }
    }

    // Serial greedy selection, identical to the serial matcher: skipping
    // matched candidates here instead of at scoring time yields the same
    // filtered subsequence in the same order with the same scores.
    let mut mate: Vec<usize> = (0..n).collect();
    let mut num_pairs = 0;
    let mut pins_scanned = 0u64;
    let mut refused_fixed = 0u64;
    for &u in order {
        if mate[u] != u {
            continue;
        }
        pins_scanned += scan[u];
        let mut best: Option<usize> = None;
        let mut best_score = 0.0;
        for &(w, s) in &cands[u] {
            if mate[w] != w {
                continue;
            }
            if !fixed.compatible(u, w) {
                refused_fixed += 1;
                continue;
            }
            if s > best_score && parts.is_none_or(|p| p[u] == p[w]) {
                best_score = s;
                best = Some(w);
            }
        }
        if let Some(w) = best {
            mate[u] = w;
            mate[w] = u;
            num_pairs += 1;
        }
    }

    dlb_trace::count(dlb_trace::Counter::CoarsenPinsScanned, pins_scanned);
    dlb_trace::count(dlb_trace::Counter::CoarsenMatchesRefusedFixed, refused_fixed);
    dlb_trace::count(dlb_trace::Counter::CoarsenMatchesAccepted, num_pairs as u64);
    Matching { mate, num_pairs }
}

/// [`ipm_matching_threads`] with an explicit [`Determinism`] mode.
///
/// `Strict` (or any run at one effective thread) is exactly
/// [`ipm_matching_threads`]: bit-identical matchings at every thread
/// count. `Fast` with more than one thread of *real* concurrency runs
/// [CAS-based concurrent matching](ipm_matching_cas) instead: vertices
/// pair concurrently on a shared atomic mate array with candidates
/// selected in `(score desc, id asc)` order — a deterministic
/// *preference* order, though the realized matching still depends on
/// thread interleaving. The Fast path does not consume `rng` (there is
/// no visit-order shuffle), which is fine because Fast makes no
/// reproducibility promise beyond its quality bounds.
///
/// Dispatch keys on [`parallel::effective_concurrency`], not the raw
/// request: an 8-thread request on a 1-core host executes serially, and
/// serial CAS matching is strictly worse than the Strict matcher (same
/// work, plus atomics, minus the bitwise guarantee). So Fast on an
/// oversubscribed host degrades gracefully to the Strict path — still
/// within Fast's quality contract, since Strict *is* the quality
/// reference.
#[allow(clippy::too_many_arguments)]
pub fn ipm_matching_mode(
    h: &Hypergraph,
    fixed: &FixedAssignment,
    parts: Option<&[usize]>,
    cfg: &CoarseningConfig,
    rng: &mut StdRng,
    threads: usize,
    determinism: Determinism,
) -> Matching {
    if determinism == Determinism::Fast && parallel::effective_concurrency(threads) > 1 {
        return ipm_matching_cas(h, fixed, parts, cfg, threads);
    }
    ipm_matching_threads(h, fixed, parts, cfg, rng, threads)
}

/// Mate-array sentinel: vertex is unmatched and unclaimed.
const FREE: usize = usize::MAX;
/// Mate-array sentinel: vertex is transiently locked by a pairing CAS.
const HELD: usize = usize::MAX - 1;
/// Bounded spin count before a transiently-[`HELD`] vertex is treated as
/// taken. The hold window is a few instructions, so this is generous.
const HELD_SPINS: usize = 64;

/// Outcome of one [`try_lock_pair`] attempt.
enum PairAttempt {
    /// `u` and `w` are now matched to each other.
    Matched,
    /// `u` itself was matched by another thread; stop trying.
    SelfTaken,
    /// `w` is matched (or persistently busy); try the next candidate.
    PartnerTaken,
}

/// Marks candidate `w` as consumed in the argmax scan by sinking its
/// score to `NEG_INFINITY` (real candidate scores are strictly positive).
fn mark_consumed(cands: &mut [(usize, f64)], w: usize) {
    for c in cands.iter_mut() {
        if c.0 == w {
            c.1 = f64::NEG_INFINITY;
            return;
        }
    }
}

/// Atomically pairs `u` with `w` on the mate array: locks the
/// lower-numbered endpoint first (a global acquisition order, so no two
/// pairing attempts can deadlock), then the higher, then publishes the
/// pair. Either lock failing releases everything acquired.
fn try_lock_pair(slots: &[AtomicUsize], u: usize, w: usize) -> PairAttempt {
    let (a, b) = if u < w { (u, w) } else { (w, u) };
    let taken = |x: usize| if x == u { PairAttempt::SelfTaken } else { PairAttempt::PartnerTaken };

    let mut spins = 0;
    loop {
        match slots[a].compare_exchange(FREE, HELD, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => break,
            Err(HELD) if spins < HELD_SPINS => {
                spins += 1;
                std::hint::spin_loop();
            }
            Err(_) => return taken(a),
        }
    }
    let mut spins = 0;
    loop {
        match slots[b].compare_exchange(FREE, HELD, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => break,
            Err(HELD) if spins < HELD_SPINS => {
                spins += 1;
                std::hint::spin_loop();
            }
            Err(_) => {
                slots[a].store(FREE, Ordering::Release);
                return taken(b);
            }
        }
    }
    slots[a].store(b, Ordering::Release);
    slots[b].store(a, Ordering::Release);
    PairAttempt::Matched
}

/// CAS-based concurrent greedy matching — the Fast-mode matcher.
///
/// Workers sweep vertex chunks concurrently. Each still-free vertex
/// scores its IPM candidates exactly as the serial matcher does, orders
/// them by `(score desc, id asc)` — deterministic tie-breaking by vertex
/// id — and then walks the list trying to [`try_lock_pair`] with each
/// candidate until one sticks or the vertex itself gets matched from the
/// other side. There is no selection barrier, so the realized matching
/// depends on interleaving; symmetry and fixed-compatibility are
/// guaranteed by construction ([`Matching::validate`] holds for every
/// schedule), and matching quality — not bitwise output — is the
/// contract ([`Determinism::Fast`]).
fn ipm_matching_cas(
    h: &Hypergraph,
    fixed: &FixedAssignment,
    parts: Option<&[usize]>,
    cfg: &CoarseningConfig,
    threads: usize,
) -> Matching {
    let n = h.num_vertices();
    let slots: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(FREE)).collect();
    let pins_scanned = AtomicU64::new(0);
    let refused_fixed = AtomicU64::new(0);

    parallel::map_chunks_with(
        threads,
        n,
        SCORE_CHUNK,
        || {
            (
                parallel::scratch_vec_filled::<f64>(n, 0.0),
                parallel::scratch_vec::<usize>(),
                parallel::scratch_vec::<(usize, f64)>(),
            )
        },
        |(scores, touched, cands), _, range| {
            let mut local_pins = 0u64;
            let mut local_refused = 0u64;
            // Visit high ids first: generators and matrix orderings tend
            // to place hubs at low ids, and whichever endpoint of a pair
            // is visited first pays the scoring scan. Letting the cheap
            // leaf side claim the pair means the hub is already taken by
            // the time it comes up and is skipped outright.
            for u in range.rev() {
                // Skip vertices already matched (HELD counts as taken —
                // the hold is transient, but re-checking later costs more
                // than the rare missed match is worth).
                if slots[u].load(Ordering::Acquire) != FREE {
                    continue;
                }
                touched.clear();
                for &j in h.vertex_nets(u) {
                    let size = h.net_size(j);
                    if size < 2 || size > cfg.max_net_size_for_matching {
                        continue;
                    }
                    let contrib = if cfg.scaled_ipm {
                        h.net_cost(j) / (size - 1) as f64
                    } else {
                        h.net_cost(j)
                    };
                    if contrib <= 0.0 {
                        continue;
                    }
                    local_pins += size as u64;
                    for &w in h.net(j) {
                        // Skip neighbors already claimed — the same
                        // pruning the serial matcher gets from `mate[w]`.
                        // The relaxed load is advisory (a racing worker
                        // may claim `w` right after); staleness only
                        // costs a failed lock attempt below.
                        if w == u || slots[w].load(Ordering::Relaxed) < HELD {
                            continue;
                        }
                        if scores[w] == 0.0 {
                            touched.push(w);
                        }
                        scores[w] += contrib;
                    }
                }
                cands.clear();
                for &w in touched.iter() {
                    let s = scores[w];
                    scores[w] = 0.0;
                    if !fixed.compatible(u, w) {
                        local_refused += 1;
                        continue;
                    }
                    if s > 0.0 && parts.is_none_or(|p| p[u] == p[w]) {
                        cands.push((w, s));
                    }
                }
                // Deterministic preference order: best score first, ties
                // broken by the smaller vertex id. Almost every vertex
                // locks its first choice, so a repeated argmax scan beats
                // sorting the whole candidate list up front.
                loop {
                    let mut best: Option<(usize, f64)> = None;
                    for &(w, s) in cands.iter() {
                        if s.is_infinite() {
                            continue; // consumed in an earlier round
                        }
                        match best {
                            Some((bw, bs)) if s < bs || (s == bs && w > bw) => {}
                            _ => best = Some((w, s)),
                        }
                    }
                    let Some((w, _)) = best else { break };
                    if slots[w].load(Ordering::Acquire) < HELD {
                        // Already matched; consume without the CAS.
                        mark_consumed(cands, w);
                        continue;
                    }
                    match try_lock_pair(&slots, u, w) {
                        PairAttempt::Matched | PairAttempt::SelfTaken => break,
                        PairAttempt::PartnerTaken => mark_consumed(cands, w),
                    }
                }
            }
            pins_scanned.fetch_add(local_pins, Ordering::Relaxed);
            refused_fixed.fetch_add(local_refused, Ordering::Relaxed);
        },
    );

    // Quiesced: every slot is FREE or a real partner (all holds are
    // released before a worker abandons an attempt).
    let mate: Vec<usize> = slots
        .iter()
        .enumerate()
        .map(|(v, s)| {
            let m = s.load(Ordering::Acquire);
            if m >= n {
                debug_assert_eq!(m, FREE);
                v
            } else {
                m
            }
        })
        .collect();
    let num_pairs = mate.iter().enumerate().filter(|&(v, &m)| v < m).count();

    dlb_trace::count(dlb_trace::Counter::CoarsenPinsScanned, pins_scanned.into_inner());
    dlb_trace::count(dlb_trace::Counter::CoarsenMatchesRefusedFixed, refused_fixed.into_inner());
    dlb_trace::count(dlb_trace::Counter::CoarsenMatchesAccepted, num_pairs as u64);
    let matching = Matching { mate, num_pairs };
    debug_assert!(matching.validate(fixed).is_ok());
    matching
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn cfg() -> CoarseningConfig {
        CoarseningConfig::default()
    }

    #[test]
    fn matches_tightly_coupled_pairs() {
        // Vertices 0,1 share two nets; 2,3 share two nets; one weak net
        // crosses. IPM should pair (0,1) and (2,3).
        let h = Hypergraph::from_nets_unit(
            4,
            &[vec![0, 1], vec![0, 1], vec![2, 3], vec![2, 3], vec![1, 2]],
        );
        let fixed = FixedAssignment::free(4);
        let mut rng = StdRng::seed_from_u64(0);
        let m = ipm_matching(&h, &fixed, &cfg(), &mut rng);
        m.validate(&fixed).unwrap();
        assert_eq!(m.num_pairs, 2);
        assert_eq!(m.mate[0], 1);
        assert_eq!(m.mate[2], 3);
    }

    #[test]
    fn incompatible_fixed_pairs_never_match() {
        let h = Hypergraph::from_nets_unit(2, &[vec![0, 1], vec![0, 1]]);
        let mut fixed = FixedAssignment::free(2);
        fixed.fix(0, 0);
        fixed.fix(1, 1);
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = ipm_matching(&h, &fixed, &cfg(), &mut rng);
            m.validate(&fixed).unwrap();
            assert_eq!(m.num_pairs, 0, "fixed-to-different-parts pair matched");
        }
    }

    #[test]
    fn same_part_fixed_pairs_do_match() {
        let h = Hypergraph::from_nets_unit(2, &[vec![0, 1]]);
        let mut fixed = FixedAssignment::free(2);
        fixed.fix(0, 3);
        fixed.fix(1, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let m = ipm_matching(&h, &fixed, &cfg(), &mut rng);
        assert_eq!(m.num_pairs, 1);
    }

    #[test]
    fn huge_nets_are_ignored_for_scores() {
        let mut c = cfg();
        c.max_net_size_for_matching = 3;
        // Only a size-4 net connects anything: no matches possible.
        let h = Hypergraph::from_nets_unit(4, &[vec![0, 1, 2, 3]]);
        let fixed = FixedAssignment::free(4);
        let mut rng = StdRng::seed_from_u64(2);
        let m = ipm_matching(&h, &fixed, &c, &mut rng);
        assert_eq!(m.num_pairs, 0);
    }

    #[test]
    fn scaled_ipm_prefers_small_nets() {
        let mut c = cfg();
        c.scaled_ipm = true;
        // 0-1 share a 2-pin net (contrib 1.0); 0-2 share a 3-pin net
        // (contrib 0.5); 2-3 share both a 2-pin and the 3-pin net
        // (contrib 1.5), so every visit order pairs (0,1) and (2,3)
        // under scaled IPM.
        let h = Hypergraph::from_nets_unit(4, &[vec![0, 1], vec![0, 2, 3], vec![2, 3]]);
        let fixed = FixedAssignment::free(4);
        for seed in 0..8 {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = ipm_matching(&h, &fixed, &c, &mut rng);
            assert_eq!(m.mate[0], 1, "seed {seed}: scaled IPM should pick the 2-pin net");
            assert_eq!(m.mate[2], 3, "seed {seed}");
        }
    }

    #[test]
    fn isolated_vertices_stay_unmatched() {
        let h = Hypergraph::from_nets_unit(3, &[vec![0, 1]]);
        let fixed = FixedAssignment::free(3);
        let mut rng = StdRng::seed_from_u64(3);
        let m = ipm_matching(&h, &fixed, &cfg(), &mut rng);
        assert_eq!(m.mate[2], 2);
        assert!(m.coarse_count() >= 2);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let h = Hypergraph::from_nets_unit(
            6,
            &[vec![0, 1, 2], vec![2, 3], vec![3, 4, 5], vec![1, 4]],
        );
        let fixed = FixedAssignment::free(6);
        let a = ipm_matching(&h, &fixed, &cfg(), &mut StdRng::seed_from_u64(7));
        let b = ipm_matching(&h, &fixed, &cfg(), &mut StdRng::seed_from_u64(7));
        assert_eq!(a.mate, b.mate);
    }

    /// Fast-mode CAS matching: always a *valid* matching (symmetric,
    /// fixed-compatible, part-restricted) under every schedule, and a
    /// non-trivial one on a matchable instance. Calls the CAS matcher
    /// directly so the path is exercised even on hosts where
    /// `effective_concurrency` would route the mode dispatch to Strict.
    #[test]
    fn cas_matching_is_valid_and_productive() {
        use rand::Rng;
        let h = crate::tests::random_hypergraph(400, 800, 6, 31);
        let mut setup_rng = StdRng::seed_from_u64(5);
        let mut fixed = FixedAssignment::free(400);
        for v in 0..400 {
            if setup_rng.gen_bool(0.2) {
                fixed.fix(v, setup_rng.gen_range(0..4));
            }
        }
        let parts: Vec<usize> = (0..400).map(|v| v % 4).collect();
        for round in 0..10u64 {
            for restriction in [None, Some(parts.as_slice())] {
                let m = ipm_matching_cas(&h, &fixed, restriction, &cfg(), 4);
                m.validate(&fixed).unwrap();
                if let Some(p) = restriction {
                    for (v, &mv) in m.mate.iter().enumerate() {
                        assert_eq!(p[v], p[mv], "cross-part match under restriction");
                    }
                }
                assert!(m.num_pairs > 50, "round {round}: only {} pairs", m.num_pairs);
            }
        }
    }

    /// Fast at one effective thread dispatches to the exact Strict
    /// matcher, including RNG consumption.
    #[test]
    fn fast_mode_single_thread_equals_strict() {
        let h = crate::tests::random_hypergraph(200, 400, 5, 13);
        let fixed = FixedAssignment::free(200);
        let strict = ipm_matching_mode(
            &h, &fixed, None, &cfg(), &mut StdRng::seed_from_u64(3), 1, Determinism::Strict,
        );
        let fast = ipm_matching_mode(
            &h, &fixed, None, &cfg(), &mut StdRng::seed_from_u64(3), 1, Determinism::Fast,
        );
        assert_eq!(fast.mate, strict.mate);
    }

    /// The parallel scoring path reproduces the serial matcher exactly —
    /// same mate vector — at every thread count, with and without fixed
    /// vertices and part restrictions. Calls [`ipm_matching_parallel`]
    /// directly so the path is exercised even on hosts where
    /// `effective_concurrency` would route the dispatch to serial.
    #[test]
    fn parallel_matching_identical_to_serial() {
        use rand::Rng;
        let h = crate::tests::random_hypergraph(300, 600, 6, 23);
        let mut setup_rng = StdRng::seed_from_u64(99);
        let mut fixed = FixedAssignment::free(300);
        for v in 0..300 {
            if setup_rng.gen_bool(0.2) {
                fixed.fix(v, setup_rng.gen_range(0..4));
            }
        }
        let parts: Vec<usize> = (0..300).map(|v| v % 4).collect();
        for seed in 0..5u64 {
            for restriction in [None, Some(parts.as_slice())] {
                let serial = ipm_matching_threads(
                    &h, &fixed, restriction, &cfg(), &mut StdRng::seed_from_u64(seed), 1,
                );
                serial.validate(&fixed).unwrap();
                // The same shuffled visit order the dispatch would build.
                let mut order: Vec<usize> = (0..300).collect();
                order.shuffle(&mut StdRng::seed_from_u64(seed));
                for threads in [2usize, 3, 8] {
                    let par =
                        ipm_matching_parallel(&h, &fixed, restriction, &cfg(), &order, threads);
                    assert_eq!(par.mate, serial.mate, "seed {seed} threads {threads}");
                    assert_eq!(par.num_pairs, serial.num_pairs);
                }
            }
        }
    }
}
