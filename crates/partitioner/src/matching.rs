//! Inner-product matching (IPM) with fixed-vertex constraints.
//!
//! IPM — PaToH's *heavy-connectivity matching*, later adopted by hMETIS
//! and Mondriaan — scores a candidate pair `(u, v)` by the inner product
//! of their net-incidence vectors: the sum over shared nets of the net's
//! contribution. With `scaled_ipm` the contribution of net `n` is
//! `c_n / (|n| − 1)`, favoring small tightly-coupled nets; unscaled it is
//! plain `c_n`.
//!
//! Greedy first-choice matching visits vertices in random order; each
//! unmatched vertex matches its best-scoring unmatched neighbor that is
//! *compatible* (not fixed to a different part — Section 4.1's
//! constraint). Scores for incompatible pairs are still computed and then
//! discarded at selection time, mirroring the paper's "compute all match
//! scores including infeasible ones, select a feasible best" strategy
//! (which it reports adds only insignificant overhead).
//!
//! # Parallel scoring
//!
//! The expensive part — accumulating inner products over shared nets —
//! depends only on the hypergraph, never on the evolving matching state
//! (the `mate` filter is applied when a vertex is *selected*, and a
//! pair's score is a constant). [`ipm_matching_threads`] therefore
//! precomputes every vertex's candidate list (partner, score) across
//! worker threads in first-touch order, then runs the greedy selection
//! serially over the shuffled visit order, skipping already-matched
//! candidates. Because a filtered subsequence preserves order and scores
//! are pair constants, the result is **bit-identical** to the serial
//! matcher at any thread count.

use dlb_hypergraph::{parallel, Hypergraph};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use crate::config::CoarseningConfig;
use crate::fixed::FixedAssignment;

/// A matching: `mate[v] == v` for unmatched vertices, otherwise the
/// partner (symmetric: `mate[mate[v]] == v`).
#[derive(Clone, Debug)]
pub struct Matching {
    /// Partner per vertex (self for unmatched).
    pub mate: Vec<usize>,
    /// Number of matched pairs.
    pub num_pairs: usize,
}

impl Matching {
    /// Number of coarse vertices this matching produces.
    pub fn coarse_count(&self) -> usize {
        self.mate.len() - self.num_pairs
    }

    /// Validates symmetry and fixed-compatibility.
    pub fn validate(&self, fixed: &FixedAssignment) -> Result<(), String> {
        if self.mate.len() != fixed.len() {
            return Err("matching length mismatch".into());
        }
        let mut pairs = 0;
        for (v, &m) in self.mate.iter().enumerate() {
            if m >= self.mate.len() {
                return Err(format!("vertex {v} matched out of range"));
            }
            if self.mate[m] != v {
                return Err(format!("matching not symmetric at {v}"));
            }
            if m != v {
                pairs += 1;
                if !fixed.compatible(v, m) {
                    return Err(format!("vertices {v} and {m} fixed to different parts"));
                }
            }
        }
        if pairs != 2 * self.num_pairs {
            return Err("pair count mismatch".into());
        }
        Ok(())
    }
}

/// Computes a greedy first-choice IPM matching of `h` honoring `fixed`.
///
/// `rng` drives the visit order; equal seeds give identical matchings.
pub fn ipm_matching(
    h: &Hypergraph,
    fixed: &FixedAssignment,
    cfg: &CoarseningConfig,
    rng: &mut StdRng,
) -> Matching {
    ipm_matching_restricted(h, fixed, None, cfg, rng)
}

/// [`ipm_matching`] with an optional part restriction: when `parts` is
/// `Some`, two vertices may only match if they currently share a part.
/// Used by V-cycle iterations (re-coarsening must keep the current
/// partition representable, exactly like adaptive graph coarsening).
pub fn ipm_matching_restricted(
    h: &Hypergraph,
    fixed: &FixedAssignment,
    parts: Option<&[usize]>,
    cfg: &CoarseningConfig,
    rng: &mut StdRng,
) -> Matching {
    ipm_matching_threads(h, fixed, parts, cfg, rng, 1)
}

/// [`ipm_matching_restricted`] with an explicit worker-thread count.
///
/// `threads == 1` runs the exact serial greedy matcher; `threads > 1`
/// precomputes candidate scores in parallel and selects serially, which
/// provably produces the same matching (see the module docs). The RNG is
/// advanced identically on every path.
pub fn ipm_matching_threads(
    h: &Hypergraph,
    fixed: &FixedAssignment,
    parts: Option<&[usize]>,
    cfg: &CoarseningConfig,
    rng: &mut StdRng,
    threads: usize,
) -> Matching {
    let n = h.num_vertices();
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);

    if threads > 1 {
        return ipm_matching_parallel(h, fixed, parts, cfg, &order, threads);
    }

    let mut mate: Vec<usize> = (0..n).collect();
    let mut num_pairs = 0;

    // Deterministic trace tallies (emitted once at the end): pins walked
    // while scoring visited-unmatched vertices, and candidates refused
    // for fixed-part incompatibility. Both are defined on the serial
    // control flow, which the parallel path reproduces exactly.
    let mut pins_scanned = 0u64;
    let mut refused_fixed = 0u64;

    // Sparse score accumulator: scores[w] for candidate partners w of the
    // current vertex, reset via the touched list.
    let mut scores = vec![0.0f64; n];
    let mut touched: Vec<usize> = Vec::new();

    for &u in &order {
        if mate[u] != u {
            continue;
        }
        touched.clear();
        for &j in h.vertex_nets(u) {
            let size = h.net_size(j);
            if size < 2 || size > cfg.max_net_size_for_matching {
                continue;
            }
            let contrib = if cfg.scaled_ipm {
                h.net_cost(j) / (size - 1) as f64
            } else {
                h.net_cost(j)
            };
            if contrib <= 0.0 {
                continue;
            }
            pins_scanned += size as u64;
            for &w in h.net(j) {
                if w == u || mate[w] != w {
                    continue;
                }
                if scores[w] == 0.0 {
                    touched.push(w);
                }
                scores[w] += contrib;
            }
        }
        // Select the best *compatible* candidate (infeasible scores were
        // computed but are skipped here, as in the paper).
        let mut best: Option<usize> = None;
        let mut best_score = 0.0;
        for &w in &touched {
            let s = scores[w];
            scores[w] = 0.0;
            if !fixed.compatible(u, w) {
                refused_fixed += 1;
                continue;
            }
            if s > best_score && parts.is_none_or(|p| p[u] == p[w]) {
                best_score = s;
                best = Some(w);
            }
        }
        if let Some(w) = best {
            mate[u] = w;
            mate[w] = u;
            num_pairs += 1;
        }
    }

    dlb_trace::count(dlb_trace::Counter::CoarsenPinsScanned, pins_scanned);
    dlb_trace::count(dlb_trace::Counter::CoarsenMatchesRefusedFixed, refused_fixed);
    dlb_trace::count(dlb_trace::Counter::CoarsenMatchesAccepted, num_pairs as u64);
    Matching { mate, num_pairs }
}

/// Chunk size for parallel candidate scoring: scoring a vertex walks all
/// of its nets' pins, so chunks are much smaller than the generic
/// [`parallel::DEFAULT_CHUNK`] to keep worker load even.
const SCORE_CHUNK: usize = 256;

/// Parallel path of [`ipm_matching_threads`]: score every vertex's
/// candidates across workers (state-independent), then select serially.
fn ipm_matching_parallel(
    h: &Hypergraph,
    fixed: &FixedAssignment,
    parts: Option<&[usize]>,
    cfg: &CoarseningConfig,
    order: &[usize],
    threads: usize,
) -> Matching {
    let n = h.num_vertices();

    // Per-vertex candidate lists (partner, inner-product score) in
    // first-touch order — exactly the order the serial matcher's
    // `touched` list would hold with no vertices matched yet — plus the
    // pins each vertex's scoring pass walks (tallied only for vertices
    // the selection loop visits unmatched, matching the serial count).
    let per_chunk = parallel::map_chunks_with(
        threads,
        n,
        SCORE_CHUNK,
        || (vec![0.0f64; n], Vec::<usize>::new()),
        |(scores, touched), _, range| {
            let mut lists: Vec<(Vec<(usize, f64)>, u64)> = Vec::with_capacity(range.len());
            for u in range {
                touched.clear();
                let mut pins_u = 0u64;
                for &j in h.vertex_nets(u) {
                    let size = h.net_size(j);
                    if size < 2 || size > cfg.max_net_size_for_matching {
                        continue;
                    }
                    let contrib = if cfg.scaled_ipm {
                        h.net_cost(j) / (size - 1) as f64
                    } else {
                        h.net_cost(j)
                    };
                    if contrib <= 0.0 {
                        continue;
                    }
                    pins_u += size as u64;
                    for &w in h.net(j) {
                        if w == u {
                            continue;
                        }
                        if scores[w] == 0.0 {
                            touched.push(w);
                        }
                        scores[w] += contrib;
                    }
                }
                let list: Vec<(usize, f64)> = touched.iter().map(|&w| {
                    let s = scores[w];
                    scores[w] = 0.0;
                    (w, s)
                }).collect();
                lists.push((list, pins_u));
            }
            lists
        },
    );
    let mut cands: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
    let mut scan: Vec<u64> = Vec::with_capacity(n);
    for chunk in per_chunk {
        for (list, pins_u) in chunk {
            cands.push(list);
            scan.push(pins_u);
        }
    }

    // Serial greedy selection, identical to the serial matcher: skipping
    // matched candidates here instead of at scoring time yields the same
    // filtered subsequence in the same order with the same scores.
    let mut mate: Vec<usize> = (0..n).collect();
    let mut num_pairs = 0;
    let mut pins_scanned = 0u64;
    let mut refused_fixed = 0u64;
    for &u in order {
        if mate[u] != u {
            continue;
        }
        pins_scanned += scan[u];
        let mut best: Option<usize> = None;
        let mut best_score = 0.0;
        for &(w, s) in &cands[u] {
            if mate[w] != w {
                continue;
            }
            if !fixed.compatible(u, w) {
                refused_fixed += 1;
                continue;
            }
            if s > best_score && parts.is_none_or(|p| p[u] == p[w]) {
                best_score = s;
                best = Some(w);
            }
        }
        if let Some(w) = best {
            mate[u] = w;
            mate[w] = u;
            num_pairs += 1;
        }
    }

    dlb_trace::count(dlb_trace::Counter::CoarsenPinsScanned, pins_scanned);
    dlb_trace::count(dlb_trace::Counter::CoarsenMatchesRefusedFixed, refused_fixed);
    dlb_trace::count(dlb_trace::Counter::CoarsenMatchesAccepted, num_pairs as u64);
    Matching { mate, num_pairs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn cfg() -> CoarseningConfig {
        CoarseningConfig::default()
    }

    #[test]
    fn matches_tightly_coupled_pairs() {
        // Vertices 0,1 share two nets; 2,3 share two nets; one weak net
        // crosses. IPM should pair (0,1) and (2,3).
        let h = Hypergraph::from_nets_unit(
            4,
            &[vec![0, 1], vec![0, 1], vec![2, 3], vec![2, 3], vec![1, 2]],
        );
        let fixed = FixedAssignment::free(4);
        let mut rng = StdRng::seed_from_u64(0);
        let m = ipm_matching(&h, &fixed, &cfg(), &mut rng);
        m.validate(&fixed).unwrap();
        assert_eq!(m.num_pairs, 2);
        assert_eq!(m.mate[0], 1);
        assert_eq!(m.mate[2], 3);
    }

    #[test]
    fn incompatible_fixed_pairs_never_match() {
        let h = Hypergraph::from_nets_unit(2, &[vec![0, 1], vec![0, 1]]);
        let mut fixed = FixedAssignment::free(2);
        fixed.fix(0, 0);
        fixed.fix(1, 1);
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = ipm_matching(&h, &fixed, &cfg(), &mut rng);
            m.validate(&fixed).unwrap();
            assert_eq!(m.num_pairs, 0, "fixed-to-different-parts pair matched");
        }
    }

    #[test]
    fn same_part_fixed_pairs_do_match() {
        let h = Hypergraph::from_nets_unit(2, &[vec![0, 1]]);
        let mut fixed = FixedAssignment::free(2);
        fixed.fix(0, 3);
        fixed.fix(1, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let m = ipm_matching(&h, &fixed, &cfg(), &mut rng);
        assert_eq!(m.num_pairs, 1);
    }

    #[test]
    fn huge_nets_are_ignored_for_scores() {
        let mut c = cfg();
        c.max_net_size_for_matching = 3;
        // Only a size-4 net connects anything: no matches possible.
        let h = Hypergraph::from_nets_unit(4, &[vec![0, 1, 2, 3]]);
        let fixed = FixedAssignment::free(4);
        let mut rng = StdRng::seed_from_u64(2);
        let m = ipm_matching(&h, &fixed, &c, &mut rng);
        assert_eq!(m.num_pairs, 0);
    }

    #[test]
    fn scaled_ipm_prefers_small_nets() {
        let mut c = cfg();
        c.scaled_ipm = true;
        // 0-1 share a 2-pin net (contrib 1.0); 0-2 share a 3-pin net
        // (contrib 0.5); 2-3 share both a 2-pin and the 3-pin net
        // (contrib 1.5), so every visit order pairs (0,1) and (2,3)
        // under scaled IPM.
        let h = Hypergraph::from_nets_unit(4, &[vec![0, 1], vec![0, 2, 3], vec![2, 3]]);
        let fixed = FixedAssignment::free(4);
        for seed in 0..8 {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = ipm_matching(&h, &fixed, &c, &mut rng);
            assert_eq!(m.mate[0], 1, "seed {seed}: scaled IPM should pick the 2-pin net");
            assert_eq!(m.mate[2], 3, "seed {seed}");
        }
    }

    #[test]
    fn isolated_vertices_stay_unmatched() {
        let h = Hypergraph::from_nets_unit(3, &[vec![0, 1]]);
        let fixed = FixedAssignment::free(3);
        let mut rng = StdRng::seed_from_u64(3);
        let m = ipm_matching(&h, &fixed, &cfg(), &mut rng);
        assert_eq!(m.mate[2], 2);
        assert!(m.coarse_count() >= 2);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let h = Hypergraph::from_nets_unit(
            6,
            &[vec![0, 1, 2], vec![2, 3], vec![3, 4, 5], vec![1, 4]],
        );
        let fixed = FixedAssignment::free(6);
        let a = ipm_matching(&h, &fixed, &cfg(), &mut StdRng::seed_from_u64(7));
        let b = ipm_matching(&h, &fixed, &cfg(), &mut StdRng::seed_from_u64(7));
        assert_eq!(a.mate, b.mate);
    }

    /// The parallel scoring path reproduces the serial matcher exactly —
    /// same mate vector — at every thread count, with and without fixed
    /// vertices and part restrictions.
    #[test]
    fn parallel_matching_identical_to_serial() {
        use rand::Rng;
        let h = crate::tests::random_hypergraph(300, 600, 6, 23);
        let mut setup_rng = StdRng::seed_from_u64(99);
        let mut fixed = FixedAssignment::free(300);
        for v in 0..300 {
            if setup_rng.gen_bool(0.2) {
                fixed.fix(v, setup_rng.gen_range(0..4));
            }
        }
        let parts: Vec<usize> = (0..300).map(|v| v % 4).collect();
        for seed in 0..5u64 {
            for restriction in [None, Some(parts.as_slice())] {
                let serial = ipm_matching_threads(
                    &h, &fixed, restriction, &cfg(), &mut StdRng::seed_from_u64(seed), 1,
                );
                serial.validate(&fixed).unwrap();
                for threads in [2usize, 3, 8] {
                    let par = ipm_matching_threads(
                        &h, &fixed, restriction, &cfg(), &mut StdRng::seed_from_u64(seed), threads,
                    );
                    assert_eq!(par.mate, serial.mate, "seed {seed} threads {threads}");
                    assert_eq!(par.num_pairs, serial.num_pairs);
                }
            }
        }
    }
}
