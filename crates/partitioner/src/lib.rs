//! Multilevel hypergraph partitioning **with fixed vertices**, serial and
//! parallel — the partitioning engine of Section 4 of the paper.
//!
//! The multilevel scheme has the classic three phases, each extended to
//! honor fixed-vertex constraints:
//!
//! * **Coarsening** ([`matching`], [`coarsen`]): inner-product matching
//!   (IPM, PaToH's *heavy-connectivity matching*) merges similar vertex
//!   pairs. Two vertices fixed to *different* parts never match; a pair
//!   with one fixed vertex produces a coarse vertex fixed to that part,
//!   so fixedness propagates exactly as in Section 4.1.
//! * **Coarse partitioning** ([`initial`]): randomized greedy hypergraph
//!   growing computes several candidate partitions (different seeds) and
//!   keeps the best; fixed coarse vertices are pre-assigned to their
//!   parts and never reconsidered (Section 4.2).
//! * **Refinement** ([`refine`]): a localized Fiduccia–Mattheyses pass
//!   over boundary vertices improves the connectivity-1 cut while
//!   maintaining balance; fixed vertices are never moved (Section 4.3).
//!
//! K-way partitions are produced by **recursive bisection** ([`rb`]) with
//! the fixed-part relabeling of Section 4.4 (parts `0..⌈k/2⌉` fix to side
//! 0, the rest to side 1), or by a **direct k-way** V-cycle ([`kway`]) —
//! Zoltan uses recursive bisection, so that is the default.
//!
//! The [`par`] module runs the same scheme SPMD over
//! [`dlb_mpisim`]: round-based candidate matching with global best-match
//! selection, replicated coarse partitioning (each rank a different seed,
//! best wins), and rank-localized FM with synchronized part weights.
//!
//! # Example
//!
//! ```
//! use dlb_hypergraph::{Hypergraph, metrics};
//! use dlb_partitioner::{partition_hypergraph, Config};
//!
//! // Two triangles joined by one net.
//! let h = Hypergraph::from_nets_unit(
//!     6,
//!     &[vec![0,1,2], vec![3,4,5], vec![2,3]],
//! );
//! let result = partition_hypergraph(&h, 2, &Config::default());
//! assert!(metrics::imbalance(&h, &result.part, 2) <= 1.0 + 0.05 + 1e-9);
//! assert_eq!(result.cut, 1.0); // only the joining net is cut
//! ```

// Index-heavy kernels iterate several parallel arrays at once; classic
// indexed loops read better there than zipped iterator chains.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod coarsen;
pub mod config;
pub mod fixed;
pub mod initial;
pub mod kway;
pub mod matching;
pub mod par;
pub mod rb;
pub mod refine;

pub use config::{
    targets_for, AuxTargets, CoarseningConfig, Config, ConfigBuilder, ConfigError, Determinism,
    DistConfig, InitialConfig, PartTargets, RefinementConfig, Scheme,
};
pub use fixed::FixedAssignment;

use dlb_hypergraph::{metrics, Hypergraph, PartId};

/// The outcome of a partitioning call.
#[derive(Clone, Debug)]
pub struct PartitionResult {
    /// Part assignment per vertex, entries in `0..k`.
    pub part: Vec<PartId>,
    /// Connectivity-1 cut (Eq. (2)) of the assignment.
    pub cut: f64,
    /// Load imbalance `max_p W_p / W_avg`.
    pub imbalance: f64,
}

impl PartitionResult {
    /// Computes cut and imbalance for `part` on `h`.
    pub fn evaluate(h: &Hypergraph, part: Vec<PartId>, k: usize) -> Self {
        let cut = metrics::cutsize_connectivity(h, &part, k);
        let imbalance = metrics::imbalance(h, &part, k);
        PartitionResult { part, cut, imbalance }
    }
}

/// Partitions `h` into `k` parts with no fixed vertices.
pub fn partition_hypergraph(h: &Hypergraph, k: usize, cfg: &Config) -> PartitionResult {
    partition_hypergraph_fixed(h, k, &FixedAssignment::free(h.num_vertices()), cfg)
}

/// Partitions `h` into `k` parts under a fixed-vertex constraint: every
/// vertex with `fixed.get(v) == Some(p)` ends in part `p`.
///
/// This is the operation the repartitioning model of Section 3 reduces
/// to: partition vertices are fixed to their parts, ordinary vertices are
/// free.
///
/// # Panics
/// Panics if `k == 0`, if `fixed` has the wrong length, or if a fixed
/// part id is `>= k`.
pub fn partition_hypergraph_fixed(
    h: &Hypergraph,
    k: usize,
    fixed: &FixedAssignment,
    cfg: &Config,
) -> PartitionResult {
    assert!(k > 0, "k must be positive");
    assert_eq!(fixed.len(), h.num_vertices(), "fixed assignment length mismatch");
    if let Some(p) = fixed.max_part() {
        assert!(p < k, "fixed part {p} out of range for k={k}");
    }

    let root = dlb_trace::span!(
        "partition",
        vertices = h.num_vertices(),
        nets = h.num_nets(),
        pins = h.num_pins(),
        k = k,
        scheme = match cfg.scheme {
            Scheme::RecursiveBisection => "rb",
            Scheme::DirectKway => "kway",
        },
    );
    let part = match cfg.scheme {
        Scheme::RecursiveBisection => rb::partition_recursive(h, k, fixed, cfg),
        Scheme::DirectKway => kway::partition_kway(h, k, fixed, cfg),
    };
    // Optional iterated V-cycles polish the result (kept only if better).
    let part = {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed ^ 0x5EED_C1C1E);
        let targets = config::targets_for(h, k, cfg);
        let threads = dlb_hypergraph::parallel::resolve_threads(cfg.threads);
        let mut scratch = refine::RefineScratch::new();
        let mut part =
            kway::iterate_vcycles(h, &targets, fixed, part, cfg, &mut rng, threads, &mut scratch);
        // Composed bisections meet each auxiliary constraint per side but
        // can still overshoot a final part; one flat k-way pass lets the
        // repair step fix that globally, with FM recovering the cut.
        // Never reached at arity 1.
        if !targets.aux.is_empty() {
            let w = metrics::part_weights(h, &part, k);
            let aux = metrics::aux_part_loads(h, &part, k);
            if !targets.feasible(&w, &aux) {
                refine::refine_threads(
                    h,
                    &targets,
                    fixed,
                    &mut part,
                    &cfg.refinement,
                    &mut rng,
                    threads,
                    &mut scratch,
                );
            }
        }
        part
    };
    debug_assert!(fixed.is_respected_by(&part));
    let result = {
        let _span = dlb_trace::span!("evaluate");
        PartitionResult::evaluate(h, part, k)
    };
    drop(root);
    result
}

/// Warm-started, refine-only partitioning: seeds from `seed_part` (the
/// previous epoch's assignment in the repartitioning loop) and improves
/// it with an FM pass plus part-restricted V-cycles, skipping the
/// coarsen→initial pipeline entirely.
///
/// Requires `cfg.warm_start`; when the knob is off the seed is ignored
/// and the call falls back to [`partition_hypergraph_fixed`], so a
/// disabled warm start reproduces the full pipeline bit for bit.
///
/// Fixed vertices are forced onto their parts before refinement (the
/// seed need not respect them); an imbalanced seed is repaired by the
/// refiner's greedy rebalance step. Deterministic under the same
/// contract as the full pipeline: `Strict` runs are bit-identical at
/// any thread count.
///
/// # Panics
/// Panics if `k == 0`, on length mismatches, if a fixed or seed part id
/// is `>= k`.
pub fn refine_partition_fixed(
    h: &Hypergraph,
    k: usize,
    fixed: &FixedAssignment,
    seed_part: &[PartId],
    cfg: &Config,
) -> PartitionResult {
    assert!(k > 0, "k must be positive");
    assert_eq!(fixed.len(), h.num_vertices(), "fixed assignment length mismatch");
    assert_eq!(seed_part.len(), h.num_vertices(), "seed partition length mismatch");
    assert!(seed_part.iter().all(|&p| p < k), "seed part out of range for k={k}");
    if let Some(p) = fixed.max_part() {
        assert!(p < k, "fixed part {p} out of range for k={k}");
    }
    if !cfg.warm_start {
        return partition_hypergraph_fixed(h, k, fixed, cfg);
    }

    let root = dlb_trace::span!(
        "partition.warm",
        vertices = h.num_vertices(),
        nets = h.num_nets(),
        pins = h.num_pins(),
        k = k,
    );
    let mut part: Vec<PartId> = seed_part.to_vec();
    for v in 0..part.len() {
        if let Some(p) = fixed.get(v) {
            part[v] = p;
        }
    }
    // Same seed derivation as the full pipeline's V-cycle block, so a
    // warm and a cold run at the same `cfg.seed` draw from the same
    // stream.
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed ^ 0x5EED_C1C1E);
    let targets = config::targets_for(h, k, cfg);
    let threads = dlb_hypergraph::parallel::resolve_threads(cfg.threads);
    let mut scratch = refine::RefineScratch::new();
    // One flat FM pass first: restores balance (greedy rebalance runs
    // inside) and polishes the seed locally...
    refine::refine_threads(h, &targets, fixed, &mut part, &cfg.refinement, &mut rng, threads, &mut scratch);
    // ...then the part-restricted V-cycles of the iterated pipeline,
    // kept only when they improve the cut.
    let part = kway::iterate_vcycles(h, &targets, fixed, part, cfg, &mut rng, threads, &mut scratch);
    debug_assert!(fixed.is_respected_by(&part));
    let result = {
        let _span = dlb_trace::span!("evaluate");
        PartitionResult::evaluate(h, part, k)
    };
    drop(root);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_hypergraph::HypergraphBuilder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A 2D grid graph expressed as a hypergraph with one net per edge.
    pub(crate) fn grid_hypergraph(rows: usize, cols: usize) -> Hypergraph {
        let idx = |r: usize, c: usize| r * cols + c;
        let mut b = HypergraphBuilder::new(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    b.add_net(1.0, [idx(r, c), idx(r, c + 1)]);
                }
                if r + 1 < rows {
                    b.add_net(1.0, [idx(r, c), idx(r + 1, c)]);
                }
            }
        }
        b.build()
    }

    /// A random hypergraph for smoke tests.
    pub(crate) fn random_hypergraph(n: usize, m: usize, max_pins: usize, seed: u64) -> Hypergraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = HypergraphBuilder::new(n);
        for _ in 0..m {
            let s = rng.gen_range(2..=max_pins.max(2));
            let pins: Vec<usize> = (0..s).map(|_| rng.gen_range(0..n)).collect();
            b.add_net(rng.gen_range(1..4) as f64, pins);
        }
        b.build()
    }

    #[test]
    fn bisect_two_cliques() {
        // Two 8-vertex cliques (as single nets of high cost) joined by a
        // cheap net: optimal bisection cuts only the joiner.
        let mut b = HypergraphBuilder::new(16);
        b.add_net(10.0, 0..8);
        b.add_net(10.0, 8..16);
        b.add_net(1.0, [7, 8]);
        // Give the partitioner edges inside the cliques to work with.
        for i in 0..7 {
            b.add_net(2.0, [i, i + 1]);
            b.add_net(2.0, [8 + i, 9 + i]);
        }
        let h = b.build();
        let r = partition_hypergraph(&h, 2, &Config::seeded(1));
        assert_eq!(r.cut, 1.0, "only the cheap joiner net should be cut");
        assert!(r.imbalance <= 1.05 + 1e-9);
    }

    #[test]
    fn grid_four_way_is_balanced_and_reasonable() {
        let h = grid_hypergraph(16, 16);
        let cfg = Config::seeded(7);
        let r = partition_hypergraph(&h, 4, &cfg);
        assert!(r.imbalance <= 1.0 + cfg.epsilon + 1e-9, "imbalance {}", r.imbalance);
        // The perfect 4-way cut of a 16x16 grid with quadrant blocks is 32;
        // a decent multilevel partitioner should be in that neighborhood.
        assert!(r.cut <= 64.0, "cut {} too high", r.cut);
    }

    #[test]
    fn fixed_vertices_are_respected() {
        let h = grid_hypergraph(8, 8);
        let mut fixed = FixedAssignment::free(64);
        fixed.fix(0, 0);
        fixed.fix(63, 3);
        fixed.fix(7, 1);
        fixed.fix(56, 2);
        let r = partition_hypergraph_fixed(&h, 4, &fixed, &Config::seeded(3));
        assert_eq!(r.part[0], 0);
        assert_eq!(r.part[63], 3);
        assert_eq!(r.part[7], 1);
        assert_eq!(r.part[56], 2);
    }

    #[test]
    fn many_fixed_vertices_still_respected() {
        let h = grid_hypergraph(10, 10);
        let mut rng = StdRng::seed_from_u64(9);
        let mut fixed = FixedAssignment::free(100);
        for v in 0..100 {
            if rng.gen_bool(0.3) {
                fixed.fix(v, rng.gen_range(0..4));
            }
        }
        let cfg = Config::seeded(11);
        let r = partition_hypergraph_fixed(&h, 4, &fixed, &cfg);
        for v in 0..100 {
            if let Some(p) = fixed.get(v) {
                assert_eq!(r.part[v], p, "vertex {v} escaped its fixed part");
            }
        }
    }

    #[test]
    fn k_equals_one_trivial() {
        let h = grid_hypergraph(4, 4);
        let r = partition_hypergraph(&h, 1, &Config::default());
        assert!(r.part.iter().all(|&p| p == 0));
        assert_eq!(r.cut, 0.0);
    }

    #[test]
    fn k_larger_than_vertices() {
        let h = grid_hypergraph(2, 2);
        let r = partition_hypergraph(&h, 8, &Config::seeded(2));
        assert_eq!(r.part.len(), 4);
        assert!(r.part.iter().all(|&p| p < 8));
    }

    #[test]
    fn uneven_k_respects_balance() {
        let h = grid_hypergraph(12, 12);
        let cfg = Config::seeded(5);
        let r = partition_hypergraph(&h, 3, &cfg);
        assert!(r.imbalance <= 1.0 + cfg.epsilon + 0.02, "imbalance {}", r.imbalance);
    }

    #[test]
    fn direct_kway_also_works() {
        let h = grid_hypergraph(12, 12);
        let mut cfg = Config::seeded(5);
        cfg.scheme = Scheme::DirectKway;
        let r = partition_hypergraph(&h, 4, &cfg);
        assert!(r.imbalance <= 1.0 + cfg.epsilon + 0.05, "imbalance {}", r.imbalance);
        assert!(r.cut > 0.0);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let h = random_hypergraph(200, 400, 5, 17);
        let a = partition_hypergraph(&h, 4, &Config::seeded(42));
        let b = partition_hypergraph(&h, 4, &Config::seeded(42));
        assert_eq!(a.part, b.part);
    }

    #[test]
    fn warm_start_disabled_falls_back_to_full_pipeline() {
        let h = grid_hypergraph(10, 10);
        let cfg = Config::seeded(21); // warm_start: false
        let seed: Vec<usize> = (0..100).map(|v| v % 4).collect();
        let cold = partition_hypergraph(&h, 4, &cfg);
        let warm = refine_partition_fixed(&h, 4, &FixedAssignment::free(100), &seed, &cfg);
        assert_eq!(cold.part, warm.part, "disabled warm start must ignore the seed");
    }

    #[test]
    fn warm_start_repairs_and_respects_constraints() {
        let h = grid_hypergraph(12, 12);
        let mut cfg = Config::seeded(23);
        cfg.warm_start = true;
        cfg.num_vcycles = 2;
        // A badly imbalanced seed that also violates the fixture.
        let seed: Vec<usize> = vec![0; 144];
        let mut fixed = FixedAssignment::free(144);
        fixed.fix(143, 3);
        let r = refine_partition_fixed(&h, 4, &fixed, &seed, &cfg);
        assert_eq!(r.part[143], 3, "fixed vertex escaped");
        assert!(
            r.imbalance <= 1.0 + cfg.epsilon + 1e-9,
            "warm start did not restore balance: {}",
            r.imbalance
        );
        assert!(r.cut > 0.0);
    }

    #[test]
    fn warm_start_is_deterministic() {
        let h = random_hypergraph(150, 300, 5, 31);
        let mut cfg = Config::seeded(42);
        cfg.warm_start = true;
        cfg.num_vcycles = 2;
        let seed: Vec<usize> = (0..150).map(|v| (v * 7) % 4).collect();
        let fixed = FixedAssignment::free(150);
        let a = refine_partition_fixed(&h, 4, &fixed, &seed, &cfg);
        let b = refine_partition_fixed(&h, 4, &fixed, &seed, &cfg);
        assert_eq!(a.part, b.part);
    }

    #[test]
    fn weighted_vertices_balance_by_weight() {
        let mut h = grid_hypergraph(8, 8);
        // Make one corner heavy.
        h.set_vertex_weight(0, 20.0);
        let cfg = Config::seeded(13);
        let r = partition_hypergraph(&h, 2, &cfg);
        let w = metrics::part_weights(&h, &r.part, 2);
        let imb = metrics::imbalance_of_weights(&w);
        assert!(imb <= 1.0 + cfg.epsilon + 0.25, "imbalance {imb} (heavy vertex)");
    }
}
