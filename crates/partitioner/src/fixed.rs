//! Fixed-vertex assignments.
//!
//! A [`FixedAssignment`] records, for each vertex, whether the vertex is
//! *fixed* to a specific part (it must end there) or *free*. The
//! repartitioning model of Section 3 fixes exactly the `k` partition
//! vertices; the partitioner honors arbitrary mixes of fixed and free
//! vertices, matching the three matching scenarios of Section 4.1.

use dlb_hypergraph::PartId;

const FREE: i64 = -1;

/// Per-vertex fixed-part constraint. `None` means free.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FixedAssignment {
    fixed: Vec<i64>,
}

impl FixedAssignment {
    /// All `n` vertices free.
    pub fn free(n: usize) -> Self {
        FixedAssignment { fixed: vec![FREE; n] }
    }

    /// Builds from per-vertex options.
    pub fn from_options(opts: &[Option<PartId>]) -> Self {
        FixedAssignment {
            fixed: opts
                .iter()
                .map(|o| o.map_or(FREE, |p| p as i64))
                .collect(),
        }
    }

    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.fixed.len()
    }

    /// True if there are no vertices.
    pub fn is_empty(&self) -> bool {
        self.fixed.is_empty()
    }

    /// The part vertex `v` is fixed to, if any.
    #[inline]
    pub fn get(&self, v: usize) -> Option<PartId> {
        let f = self.fixed[v];
        (f >= 0).then_some(f as PartId)
    }

    /// True if `v` is fixed.
    #[inline]
    pub fn is_fixed(&self, v: usize) -> bool {
        self.fixed[v] >= 0
    }

    /// Fixes `v` to part `p`.
    pub fn fix(&mut self, v: usize, p: PartId) {
        self.fixed[v] = p as i64;
    }

    /// Frees `v`.
    pub fn unfix(&mut self, v: usize) {
        self.fixed[v] = FREE;
    }

    /// Number of fixed vertices.
    pub fn num_fixed(&self) -> usize {
        self.fixed.iter().filter(|&&f| f >= 0).count()
    }

    /// Largest fixed part id, if any vertex is fixed.
    pub fn max_part(&self) -> Option<PartId> {
        self.fixed.iter().filter(|&&f| f >= 0).max().map(|&f| f as PartId)
    }

    /// The matching constraint of Section 4.1: two vertices may merge
    /// unless they are fixed to different parts.
    #[inline]
    pub fn compatible(&self, u: usize, v: usize) -> bool {
        let (fu, fv) = (self.fixed[u], self.fixed[v]);
        fu < 0 || fv < 0 || fu == fv
    }

    /// The fixed part of a coarse vertex formed by merging `u` and `v`
    /// (caller must have checked [`Self::compatible`]): fixed wins over
    /// free; both-fixed must agree.
    #[inline]
    pub fn merged(&self, u: usize, v: usize) -> Option<PartId> {
        self.get(u).or_else(|| self.get(v))
    }

    /// True if `part` assigns every fixed vertex to its fixed part.
    pub fn is_respected_by(&self, part: &[PartId]) -> bool {
        part.len() == self.fixed.len()
            && (0..self.fixed.len()).all(|v| self.get(v).is_none_or(|p| part[v] == p))
    }

    /// Remaps fixed parts for one bisection step (Section 4.4): parts
    /// `0..split` fix to side 0, parts `split..` to side 1.
    pub fn bisection_sides(&self, split: PartId) -> FixedAssignment {
        FixedAssignment {
            fixed: self
                .fixed
                .iter()
                .map(|&f| {
                    if f < 0 {
                        FREE
                    } else if (f as PartId) < split {
                        0
                    } else {
                        1
                    }
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_and_fix() {
        let mut f = FixedAssignment::free(3);
        assert_eq!(f.num_fixed(), 0);
        assert!(!f.is_fixed(1));
        f.fix(1, 2);
        assert_eq!(f.get(1), Some(2));
        assert_eq!(f.num_fixed(), 1);
        assert_eq!(f.max_part(), Some(2));
        f.unfix(1);
        assert_eq!(f.get(1), None);
    }

    #[test]
    fn compatibility_matrix() {
        let mut f = FixedAssignment::free(4);
        f.fix(0, 1);
        f.fix(1, 1);
        f.fix(2, 2);
        // same part: ok; different parts: no; fixed-free: ok.
        assert!(f.compatible(0, 1));
        assert!(!f.compatible(0, 2));
        assert!(f.compatible(0, 3));
        assert!(f.compatible(3, 3));
    }

    #[test]
    fn merged_propagates_fixedness() {
        let mut f = FixedAssignment::free(3);
        f.fix(0, 2);
        assert_eq!(f.merged(0, 1), Some(2));
        assert_eq!(f.merged(1, 0), Some(2));
        assert_eq!(f.merged(1, 2), None);
    }

    #[test]
    fn respected_by() {
        let mut f = FixedAssignment::free(3);
        f.fix(2, 1);
        assert!(f.is_respected_by(&[0, 0, 1]));
        assert!(!f.is_respected_by(&[0, 0, 0]));
        assert!(!f.is_respected_by(&[0, 0])); // wrong length
    }

    #[test]
    fn bisection_sides_relabels() {
        let f = FixedAssignment::from_options(&[Some(0), Some(1), Some(2), Some(3), None]);
        let sides = f.bisection_sides(2);
        assert_eq!(sides.get(0), Some(0));
        assert_eq!(sides.get(1), Some(0));
        assert_eq!(sides.get(2), Some(1));
        assert_eq!(sides.get(3), Some(1));
        assert_eq!(sides.get(4), None);
    }

    #[test]
    fn from_options_roundtrip() {
        let opts = vec![None, Some(3), None];
        let f = FixedAssignment::from_options(&opts);
        assert_eq!(f.get(0), None);
        assert_eq!(f.get(1), Some(3));
        assert_eq!(f.len(), 3);
    }
}
