//! Direct k-way multilevel partitioning, and the shared V-cycle used by
//! both k-way and recursive bisection.
//!
//! The V-cycle is the classic multilevel scheme of Section 2.2: coarsen
//! until the hypergraph is small (or coarsening stalls), partition the
//! coarsest hypergraph, then project back level by level, refining at
//! each level. Fixed-vertex constraints ride along the hierarchy via
//! [`crate::coarsen::CoarseLevel::coarse_fixed`].

use dlb_hypergraph::{metrics, parallel, Hypergraph, PartId};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::coarsen::{coarsen_to_mode, contract_threads, CoarseLevel};
use crate::config::{Config, PartTargets};
use crate::fixed::FixedAssignment;
use crate::initial::initial_partition;
use crate::matching::ipm_matching_mode;
use crate::refine::{refine_threads, RefineScratch};

/// Runs one multilevel V-cycle on `h` for the given targets (any number
/// of parts), honoring `fixed`. Returns a complete assignment.
///
/// `threads` is the worker count for the data-parallel kernels (already
/// resolved by the caller); `scratch` is the refinement scratch reused
/// across every level. Bit-identical at every thread count.
pub(crate) fn multilevel(
    h: &Hypergraph,
    targets: &PartTargets,
    fixed: &FixedAssignment,
    cfg: &Config,
    rng: &mut StdRng,
    threads: usize,
    scratch: &mut RefineScratch,
) -> Vec<PartId> {
    let k = targets.k();
    if k == 1 {
        return vec![0; h.num_vertices()];
    }
    if h.num_vertices() == 0 {
        return Vec::new();
    }
    let ml_span = dlb_trace::span!("multilevel", vertices = h.num_vertices(), k = k);

    let coarse_target = (cfg.coarsening.coarse_to_factor * k).max(cfg.coarsening.min_coarse_vertices);
    let hierarchy =
        coarsen_to_mode(h, fixed, coarse_target, &cfg.coarsening, rng, threads, cfg.determinism);
    ml_span.attr("levels", hierarchy.levels.len());

    // Partition the coarsest hypergraph.
    let (coarsest_h, coarsest_fixed): (&Hypergraph, &FixedAssignment) = match hierarchy.levels.last()
    {
        Some(level) => (&level.coarse, &level.coarse_fixed),
        None => (h, fixed),
    };
    dlb_trace::count(dlb_trace::Counter::CoarseVertices, coarsest_h.num_vertices() as u64);
    dlb_trace::count(dlb_trace::Counter::CoarseNets, coarsest_h.num_nets() as u64);
    dlb_trace::count(dlb_trace::Counter::CoarsePins, coarsest_h.num_pins() as u64);
    let mut part = initial_partition(coarsest_h, targets, coarsest_fixed, &cfg.initial, rng);
    {
        let _span = dlb_trace::span!("refine.level", level = hierarchy.levels.len());
        refine_threads(coarsest_h, targets, coarsest_fixed, &mut part, &cfg.refinement, rng, threads, scratch);
    }

    // Uncoarsen: project to each finer level and refine there.
    for i in (0..hierarchy.levels.len()).rev() {
        let _span = dlb_trace::span!("refine.level", level = i);
        let level = &hierarchy.levels[i];
        let (finer_h, finer_fixed): (&Hypergraph, &FixedAssignment) = if i == 0 {
            (h, fixed)
        } else {
            (&hierarchy.levels[i - 1].coarse, &hierarchy.levels[i - 1].coarse_fixed)
        };
        let mut finer_part = vec![0usize; finer_h.num_vertices()];
        for (v, &c) in level.fine_to_coarse.iter().enumerate() {
            finer_part[v] = part[c];
        }
        refine_threads(finer_h, targets, finer_fixed, &mut finer_part, &cfg.refinement, rng, threads, scratch);
        part = finer_part;
    }
    part
}

/// One *iterated* V-cycle: re-coarsens `h` with matching restricted to
/// the current parts (so the partition stays exactly representable at
/// every level), then refines the projection on the way back up.
/// Returns the refined assignment; the caller decides whether to keep it.
#[allow(clippy::too_many_arguments)]
pub(crate) fn vcycle_refine(
    h: &Hypergraph,
    targets: &PartTargets,
    fixed: &FixedAssignment,
    part: &[PartId],
    cfg: &Config,
    rng: &mut StdRng,
    threads: usize,
    scratch: &mut RefineScratch,
) -> Vec<PartId> {
    let k = targets.k();
    let coarse_target = (cfg.coarsening.coarse_to_factor * k).max(cfg.coarsening.min_coarse_vertices);

    let mut levels: Vec<CoarseLevel> = Vec::new();
    let mut cur_h = h.clone();
    let mut cur_fixed = fixed.clone();
    let mut cur_part = part.to_vec();
    while cur_h.num_vertices() > coarse_target && levels.len() < cfg.coarsening.max_levels {
        let _span = dlb_trace::span!(
            "coarsen.level",
            level = levels.len(),
            vertices = cur_h.num_vertices(),
        );
        let m = ipm_matching_mode(
            &cur_h,
            &cur_fixed,
            Some(&cur_part),
            &cfg.coarsening,
            rng,
            threads,
            cfg.determinism,
        );
        let before = cur_h.num_vertices();
        if ((before - m.coarse_count()) as f64) < before as f64 * cfg.coarsening.min_reduction {
            break;
        }
        dlb_trace::count(dlb_trace::Counter::CoarsenLevels, 1);
        let level = contract_threads(&cur_h, &m, &cur_fixed, threads);
        let mut coarse_part = vec![0usize; level.coarse.num_vertices()];
        for (v, &c) in level.fine_to_coarse.iter().enumerate() {
            coarse_part[c] = cur_part[v];
        }
        cur_h = level.coarse.clone();
        cur_fixed = level.coarse_fixed.clone();
        cur_part = coarse_part;
        levels.push(level);
    }

    // Refine at the coarsest level, then project upward, refining at
    // each level (same uncoarsening walk as the primary cycle).
    {
        let _span = dlb_trace::span!("refine.level", level = levels.len());
        let (coarsest_h, coarsest_fixed): (&Hypergraph, &FixedAssignment) = match levels.last() {
            Some(level) => (&level.coarse, &level.coarse_fixed),
            None => (h, fixed),
        };
        refine_threads(coarsest_h, targets, coarsest_fixed, &mut cur_part, &cfg.refinement, rng, threads, scratch);
    }
    for i in (0..levels.len()).rev() {
        let _span = dlb_trace::span!("refine.level", level = i);
        let level = &levels[i];
        let (finer_h, finer_fixed): (&Hypergraph, &FixedAssignment) = if i == 0 {
            (h, fixed)
        } else {
            (&levels[i - 1].coarse, &levels[i - 1].coarse_fixed)
        };
        let mut finer_part = vec![0usize; finer_h.num_vertices()];
        for (v, &c) in level.fine_to_coarse.iter().enumerate() {
            finer_part[v] = cur_part[c];
        }
        refine_threads(finer_h, targets, finer_fixed, &mut finer_part, &cfg.refinement, rng, threads, scratch);
        cur_part = finer_part;
    }
    cur_part
}

/// Runs the configured number of extra V-cycles on `part`, keeping each
/// cycle's result only when it improves the k-1 cut without worsening
/// balance beyond the cap.
#[allow(clippy::too_many_arguments)]
pub(crate) fn iterate_vcycles(
    h: &Hypergraph,
    targets: &PartTargets,
    fixed: &FixedAssignment,
    mut part: Vec<PartId>,
    cfg: &Config,
    rng: &mut StdRng,
    threads: usize,
    scratch: &mut RefineScratch,
) -> Vec<PartId> {
    if cfg.num_vcycles <= 1 || h.num_vertices() == 0 || targets.k() < 2 {
        return part;
    }
    let k = targets.k();
    let metric = dlb_hypergraph::metrics::CutMetric::Connectivity;
    let mut best_cut = metrics::cutsize_par(h, &part, k, metric, threads);
    for _ in 1..cfg.num_vcycles {
        let span = dlb_trace::span!("vcycle.iterate");
        dlb_trace::count(dlb_trace::Counter::VcyclesRun, 1);
        let candidate = vcycle_refine(h, targets, fixed, &part, cfg, rng, threads, scratch);
        let cut = {
            let _span = dlb_trace::span!("evaluate");
            metrics::cutsize_par(h, &candidate, k, metric, threads)
        };
        let w = metrics::part_weights_par(h, &candidate, k, threads);
        let mut feasible = (0..k).all(|p| w[p] <= targets.cap(p) + 1e-9);
        if feasible && !targets.aux.is_empty() {
            let aux_loads = metrics::aux_part_loads(h, &candidate, k);
            feasible = targets.feasible(&w, &aux_loads);
        }
        let kept = cut < best_cut && feasible;
        span.attr("kept", kept);
        if kept {
            dlb_trace::count(dlb_trace::Counter::VcyclesKept, 1);
            best_cut = cut;
            part = candidate;
        }
    }
    part
}

/// Direct k-way multilevel partitioning with fixed vertices.
pub fn partition_kway(
    h: &Hypergraph,
    k: usize,
    fixed: &FixedAssignment,
    cfg: &Config,
) -> Vec<PartId> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let targets = crate::config::targets_for(h, k, cfg);
    let threads = parallel::resolve_threads(cfg.threads);
    let mut scratch = RefineScratch::new();
    multilevel(h, &targets, fixed, cfg, &mut rng, threads, &mut scratch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_hypergraph::metrics;

    #[test]
    fn kway_direct_basics() {
        let h = crate::tests::grid_hypergraph(10, 10);
        let fixed = FixedAssignment::free(100);
        let part = partition_kway(&h, 5, &fixed, &Config::seeded(3));
        assert_eq!(part.len(), 100);
        assert!(part.iter().all(|&p| p < 5));
        let imb = metrics::imbalance(&h, &part, 5);
        assert!(imb <= 1.12, "imbalance {imb}");
    }

    #[test]
    fn kway_honors_fixed() {
        let h = crate::tests::grid_hypergraph(6, 6);
        let mut fixed = FixedAssignment::free(36);
        fixed.fix(0, 1);
        fixed.fix(35, 0);
        let part = partition_kway(&h, 2, &fixed, &Config::seeded(4));
        assert_eq!(part[0], 1);
        assert_eq!(part[35], 0);
    }

    #[test]
    fn extra_vcycles_never_hurt() {
        let h = crate::tests::random_hypergraph(250, 500, 5, 31);
        let fixed = FixedAssignment::free(250);
        let mut base_cfg = Config::seeded(2);
        base_cfg.scheme = crate::Scheme::DirectKway;
        let one = crate::partition_hypergraph_fixed(&h, 4, &fixed, &base_cfg);
        let mut cfg = base_cfg.clone();
        cfg.num_vcycles = 3;
        let three = crate::partition_hypergraph_fixed(&h, 4, &fixed, &cfg);
        assert!(
            three.cut <= one.cut + 1e-9,
            "3 V-cycles ({}) must not be worse than 1 ({})",
            three.cut,
            one.cut
        );
        assert!(three.imbalance <= 1.0 + cfg.epsilon + 0.05);
    }

    #[test]
    fn vcycle_respects_fixed_vertices() {
        let h = crate::tests::grid_hypergraph(8, 8);
        let mut fixed = FixedAssignment::free(64);
        fixed.fix(0, 1);
        fixed.fix(63, 0);
        let mut cfg = Config::seeded(4);
        cfg.num_vcycles = 3;
        let r = crate::partition_hypergraph_fixed(&h, 2, &fixed, &cfg);
        assert_eq!(r.part[0], 1);
        assert_eq!(r.part[63], 0);
    }

    #[test]
    fn multilevel_on_netless_hypergraph() {
        // No nets → no coarsening possible, initial partition must still
        // produce a balanced assignment.
        let h = Hypergraph::from_nets_unit(40, &[]);
        let fixed = FixedAssignment::free(40);
        let part = partition_kway(&h, 4, &fixed, &Config::seeded(5));
        let w = metrics::part_weights(&h, &part, 4);
        for p in 0..4 {
            assert!((w[p] - 10.0).abs() <= 2.0, "part {p} weight {}", w[p]);
        }
    }
}
