//! Localized parallel FM refinement (Section 4.3, parallel).
//!
//! Each rank proposes moves for its **owned** boundary vertices against a
//! private copy of the global partition state (so proposals within one
//! rank are internally consistent), then all proposals are exchanged
//! (all-gather) and applied on every rank in the same deterministic
//! order, re-validating each move's gain and balance feasibility against
//! the evolving shared state. Several pass-pairs run per level, exactly
//! the "multiple pass-pairs, each vertex considered for a move" structure
//! the paper describes.

use dlb_hypergraph::{Hypergraph, PartId};
use dlb_mpisim::{BlockDist, Comm};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::config::{PartTargets, RefinementConfig};
use crate::fixed::FixedAssignment;
use crate::refine::{MoveScratch, PartitionState};

/// One rank's proposed move.
type Move = (usize, PartId); // (vertex, destination part)

/// Proposal accept rule, shared with the distributed driver: strictly
/// improving moves, or zero-gain moves away from an over-target part.
pub(crate) fn accepts_proposal(gain: f64, source_weight: f64, source_target: f64) -> bool {
    gain > 0.0 || (gain == 0.0 && source_weight > source_target)
}

/// Revalidation accept rule applied against the evolving shared state,
/// shared with the distributed driver: strictly improving, or zero-gain
/// moves that shift weight from the heavier to the lighter side.
pub(crate) fn accepts_revalidated(gain: f64, from_weight: f64, to_weight: f64, w: f64) -> bool {
    gain > 0.0 || (gain == 0.0 && from_weight > to_weight + w)
}

/// Proposes moves for owned boundary vertices on a private state copy.
fn propose_local_moves(
    h: &Hypergraph,
    state: &mut PartitionState,
    targets: &PartTargets,
    fixed: &FixedAssignment,
    range: &std::ops::Range<usize>,
    rng: &mut StdRng,
) -> Vec<Move> {
    let mut scratch = MoveScratch::new(targets.k());
    let mut boundary: Vec<usize> = state
        .boundary_vertices()
        .into_iter()
        .filter(|v| range.contains(v) && !fixed.is_fixed(*v))
        .collect();
    boundary.shuffle(rng);

    let mut moves = Vec::new();
    for v in boundary {
        if let Some((to, gain)) = state.best_move(v, targets, &mut scratch) {
            if accepts_proposal(gain, state.weights[state.part[v]], targets.target[state.part[v]]) {
                state.apply(v, to);
                moves.push((v, to));
            }
        }
        let _ = h; // structure is read through `state`
    }
    moves
}

/// One parallel refinement pass. Returns the number of moves applied
/// (identical on every rank).
fn par_pass(
    comm: &mut Comm,
    state: &mut PartitionState,
    targets: &PartTargets,
    fixed: &FixedAssignment,
    h: &Hypergraph,
    rng: &mut StdRng,
) -> usize {
    let dist = BlockDist::new(h.num_vertices(), comm.size());
    let my_range = dist.range(comm.rank());

    // Propose on a private copy so a rank's own proposals compose.
    let mut private = PartitionState::new(h, targets.k(), state.part.clone());
    let shared_draw: u64 = rng.gen();
    let mut my_rng =
        StdRng::seed_from_u64(shared_draw ^ (comm.rank() as u64).wrapping_mul(0xC0FF_EE00_1234_5678));
    let my_moves = propose_local_moves(h, &mut private, targets, fixed, &my_range, &mut my_rng);

    // Exchange and apply deterministically (rank order, proposal order),
    // revalidating against the evolving shared state.
    let all_moves: Vec<Vec<Move>> = comm.allgather(my_moves);
    let mut scratch = MoveScratch::new(targets.k());
    let mut applied = 0usize;
    for rank_moves in &all_moves {
        for &(v, to) in rank_moves {
            if fixed.is_fixed(v) || state.part[v] == to {
                continue;
            }
            let w = h.vertex_weight(v);
            if state.weights[to] + w > targets.cap(to) || !state.aux_fits(v, to, targets) {
                continue;
            }
            let gain = state.gain(v, to);
            if accepts_revalidated(gain, state.weights[state.part[v]], state.weights[to], w) {
                state.apply(v, to);
                applied += 1;
            }
        }
    }
    let _ = &mut scratch;
    applied
}

/// Parallel refinement: greedily restores balance (collectively, using
/// the same deterministic logic on every rank), then runs localized FM
/// pass-pairs until a pass applies no moves.
pub fn par_refine(
    comm: &mut Comm,
    h: &Hypergraph,
    targets: &PartTargets,
    fixed: &FixedAssignment,
    part: &mut Vec<PartId>,
    cfg: &RefinementConfig,
    rng: &mut StdRng,
) {
    let k = targets.k();
    if k < 2 || h.num_vertices() == 0 {
        return;
    }
    let mut state = PartitionState::new(h, k, std::mem::take(part));

    // Balance restoration is deterministic given identical state, so all
    // ranks perform it redundantly without communication (it is rare and
    // cheap relative to FM).
    let mut scratch = MoveScratch::new(k);
    crate::refine::rebalance(&mut state, targets, fixed, &mut scratch);
    // Auxiliary feasibility repair: deterministic given identical state,
    // so ranks run it redundantly in lockstep like `rebalance`. Never
    // reached at arity 1.
    if !targets.aux.is_empty() && !state.feasible(targets) {
        crate::refine::greedy_repair(&mut state, targets, fixed);
    }

    for _ in 0..cfg.max_passes {
        let moved = par_pass(comm, &mut state, targets, fixed, h, rng);
        if moved == 0 {
            break;
        }
    }
    *part = state.part;
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_hypergraph::metrics;
    use dlb_mpisim::run_spmd;

    #[test]
    fn parallel_refine_improves_and_agrees() {
        let h = crate::tests::grid_hypergraph(10, 10);
        let targets = PartTargets::uniform(100.0, 2, 0.05);
        let fixed = FixedAssignment::free(100);
        let cfg = RefinementConfig::default();
        // Column-parity stripes: bad cut.
        let initial: Vec<usize> = (0..100).map(|v| v % 2).collect();
        let before = metrics::cutsize_connectivity(&h, &initial, 2);
        let results = run_spmd(4, |comm| {
            let mut part = initial.clone();
            let mut rng = StdRng::seed_from_u64(3);
            par_refine(comm, &h, &targets, &fixed, &mut part, &cfg, &mut rng);
            part
        });
        for r in &results[1..] {
            assert_eq!(*r, results[0], "ranks disagree after refinement");
        }
        let after = metrics::cutsize_connectivity(&h, &results[0], 2);
        assert!(after < before, "cut {before} -> {after}");
        assert!(metrics::imbalance(&h, &results[0], 2) <= 1.05 + 1e-9);
    }

    #[test]
    fn parallel_refine_keeps_fixed_vertices() {
        let h = crate::tests::grid_hypergraph(8, 8);
        let targets = PartTargets::uniform(64.0, 2, 0.05);
        let mut fixed = FixedAssignment::free(64);
        let initial: Vec<usize> = (0..64).map(|v| v % 2).collect();
        for v in (0..64).step_by(5) {
            fixed.fix(v, initial[v]);
        }
        let cfg = RefinementConfig::default();
        let results = run_spmd(2, |comm| {
            let mut part = initial.clone();
            let mut rng = StdRng::seed_from_u64(5);
            par_refine(comm, &h, &targets, &fixed, &mut part, &cfg, &mut rng);
            part
        });
        for v in (0..64).step_by(5) {
            assert_eq!(results[0][v], initial[v], "fixed vertex {v} moved");
        }
    }
}
