//! The parallel multilevel V-cycle (Section 4, assembled).

use dlb_hypergraph::{parallel, Hypergraph, PartId};
use dlb_mpisim::Comm;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::coarsen::{contract_threads, Hierarchy};
use crate::config::{Config, PartTargets};
use crate::fixed::FixedAssignment;
use crate::initial::{initial_partition, score};
use crate::par::matching::par_ipm_matching_threads;
use crate::par::refine::par_refine;
use crate::refine::{refine_threads, RefineScratch};

/// One parallel multilevel V-cycle, dispatched to the replicated or the
/// memory-scalable distributed driver per `cfg.dist.distributed`. Both
/// paths are collective and return bit-identical assignments at any
/// rank count; they differ only in per-rank memory and communication.
/// This is the single entry point the recursive-bisection stack uses.
pub fn multilevel(
    comm: &mut Comm,
    h: &Hypergraph,
    targets: &PartTargets,
    fixed: &FixedAssignment,
    cfg: &Config,
    rng: &mut StdRng,
) -> Vec<PartId> {
    if cfg.dist.distributed {
        crate::par::dist::dist_multilevel(comm, h, targets, fixed, cfg, rng)
    } else {
        par_multilevel(comm, h, targets, fixed, cfg, rng)
    }
}

/// One parallel multilevel V-cycle with the hypergraph replicated on
/// every rank. Collective; every rank returns the identical assignment.
pub fn par_multilevel(
    comm: &mut Comm,
    h: &Hypergraph,
    targets: &PartTargets,
    fixed: &FixedAssignment,
    cfg: &Config,
    rng: &mut StdRng,
) -> Vec<PartId> {
    let k = targets.k();
    if k == 1 {
        return vec![0; h.num_vertices()];
    }
    if h.num_vertices() == 0 {
        return Vec::new();
    }
    // The simulator runs every rank as its own OS thread, so the shared
    // worker budget is split evenly across ranks: each rank gets
    // `total / size` (at least 1) threads for its local kernels. The
    // thread count never changes results, only timing.
    let threads = (parallel::resolve_threads(cfg.threads) / comm.size()).max(1);
    let mut scratch = RefineScratch::new();
    let ml_span = dlb_trace::span!(
        "par.multilevel",
        vertices = h.num_vertices(),
        k = k,
        ranks = comm.size(),
    );

    // --- Parallel coarsening: candidate-round IPM per level. ---
    let coarse_target =
        (cfg.coarsening.coarse_to_factor * k).max(cfg.coarsening.min_coarse_vertices);
    let mut hierarchy = Hierarchy::default();
    let mut current = h.clone();
    let mut current_fixed = fixed.clone();
    while current.num_vertices() > coarse_target && hierarchy.levels.len() < cfg.coarsening.max_levels
    {
        let span = dlb_trace::span!(
            "par.coarsen.level",
            level = hierarchy.levels.len(),
            vertices = current.num_vertices(),
        );
        let stats_before = comm.stats();
        let matching =
            par_ipm_matching_threads(comm, &current, &current_fixed, &cfg.coarsening, rng, threads);
        let before = current.num_vertices();
        let after = matching.coarse_count();
        if ((before - after) as f64) < before as f64 * cfg.coarsening.min_reduction {
            break; // unsuccessful coarsening (paper's 10% rule)
        }
        // With the hypergraph replicated, contraction is a deterministic
        // function of the (identical) matching, so every rank builds the
        // same coarse hypergraph locally. The distributed driver
        // ([`crate::par::dist`]) is the variant that communicates here,
        // because no rank holds all the pins.
        let level = contract_threads(&current, &matching, &current_fixed, threads);
        span.attr("matches", matching.num_pairs);
        attr_comm_delta(&span, stats_before, comm.stats());
        dlb_trace::count(dlb_trace::Counter::CoarsenLevels, 1);
        dlb_trace::count(
            dlb_trace::Counter::CoarsenMatchesAccepted,
            matching.num_pairs as u64,
        );
        current = level.coarse.clone();
        current_fixed = level.coarse_fixed.clone();
        hierarchy.levels.push(level);
    }

    // --- Coarse partitioning: one randomized attempt per rank (plus the
    // configured serial attempts), globally best wins (Section 4.2). ---
    let (coarsest_h, coarsest_fixed): (&Hypergraph, &FixedAssignment) = match hierarchy.levels.last()
    {
        Some(level) => (&level.coarse, &level.coarse_fixed),
        None => (h, fixed),
    };
    let init_span = dlb_trace::span!("par.initial", vertices = coarsest_h.num_vertices());
    let init_stats = comm.stats();
    dlb_trace::count(dlb_trace::Counter::CoarseVertices, coarsest_h.num_vertices() as u64);
    dlb_trace::count(dlb_trace::Counter::CoarseNets, coarsest_h.num_nets() as u64);
    dlb_trace::count(dlb_trace::Counter::CoarsePins, coarsest_h.num_pins() as u64);
    let shared_draw: u64 = rng.gen();
    let mut my_rng = StdRng::seed_from_u64(
        shared_draw ^ (comm.rank() as u64).wrapping_mul(0x1357_9BDF_2468_ACE0),
    );
    let mut my_part =
        initial_partition(coarsest_h, targets, coarsest_fixed, &cfg.initial, &mut my_rng);
    refine_threads(
        coarsest_h,
        targets,
        coarsest_fixed,
        &mut my_part,
        &cfg.refinement,
        &mut my_rng,
        threads,
        &mut scratch,
    );
    let my_score = score(coarsest_h, &my_part, targets);
    // Pick the winning rank, then broadcast its partition.
    let (_, winner) = comm.allreduce((my_score, comm.rank()), |a, b| {
        match a.0.total_cmp(&b.0) {
            std::cmp::Ordering::Less => a,
            std::cmp::Ordering::Greater => b,
            std::cmp::Ordering::Equal => {
                if a.1 <= b.1 {
                    a
                } else {
                    b
                }
            }
        }
    });
    let mut part = comm.broadcast(winner, my_part);
    attr_comm_delta(&init_span, init_stats, comm.stats());
    drop(init_span);

    // --- Uncoarsening with localized parallel FM per level. ---
    let nlevels = hierarchy.levels.len();
    for i in (0..nlevels).rev() {
        // Refine at the current (coarse) level, then project one level up.
        // Levels are numbered with 0 = the original (finest) hypergraph.
        let span = dlb_trace::span!("par.refine.level", level = i + 1);
        let stats_before = comm.stats();
        let (level_h, level_fixed): (&Hypergraph, &FixedAssignment) = {
            let l = &hierarchy.levels[i];
            (&l.coarse, &l.coarse_fixed)
        };
        let before_part = dlb_trace::enabled().then(|| part.clone());
        par_refine(comm, level_h, targets, level_fixed, &mut part, &cfg.refinement, rng);
        record_committed_moves(&span, before_part.as_deref(), &part);
        attr_comm_delta(&span, stats_before, comm.stats());
        let level = &hierarchy.levels[i];
        let mut finer = vec![0usize; level.fine_to_coarse.len()];
        for (v, &c) in level.fine_to_coarse.iter().enumerate() {
            finer[v] = part[c];
        }
        part = finer;
    }
    // Final refinement at the finest level.
    let span = dlb_trace::span!("par.refine.level", level = 0usize);
    let stats_before = comm.stats();
    let before_part = dlb_trace::enabled().then(|| part.clone());
    par_refine(comm, h, targets, fixed, &mut part, &cfg.refinement, rng);
    record_committed_moves(&span, before_part.as_deref(), &part);
    attr_comm_delta(&span, stats_before, comm.stats());
    drop(span);
    drop(ml_span);
    part
}

/// Attaches this rank's [`CommStats`] deltas for a traced region to its
/// span (inert off the recording rank). The ledger is rank 0's view;
/// in the replicated driver every rank's pattern is symmetric.
pub(crate) fn attr_comm_delta(
    span: &dlb_trace::SpanGuard,
    before: dlb_mpisim::CommStats,
    after: dlb_mpisim::CommStats,
) {
    span.attr("msgs_sent", after.messages_sent - before.messages_sent);
    span.attr("msgs_recv", after.messages_received - before.messages_received);
    span.attr("bytes_sent", after.bytes_sent - before.bytes_sent);
    span.attr("bytes_recv", after.bytes_received - before.bytes_received);
}

/// Records the number of vertices a parallel refinement level actually
/// moved (an outcome diff, so the value is identical at any rank count —
/// partitions are bit-identical) as both a span attribute and the
/// [`ParRefineMovesCommitted`](dlb_trace::Counter) counter.
pub(crate) fn record_committed_moves(
    span: &dlb_trace::SpanGuard,
    before: Option<&[PartId]>,
    after: &[PartId],
) {
    let Some(before) = before else { return };
    let moved = before
        .iter()
        .zip(after)
        .filter(|(a, b)| a != b)
        .count() as u64;
    span.attr("moves_committed", moved);
    dlb_trace::count(dlb_trace::Counter::ParRefineMovesCommitted, moved);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_hypergraph::metrics;
    use dlb_mpisim::run_spmd;

    #[test]
    fn par_multilevel_bisection_quality() {
        let h = crate::tests::grid_hypergraph(14, 14);
        let targets = PartTargets::uniform(h.total_vertex_weight(), 2, 0.05);
        let fixed = FixedAssignment::free(h.num_vertices());
        let cfg = Config::seeded(17);
        let results = run_spmd(4, |comm| {
            let mut rng = StdRng::seed_from_u64(1);
            par_multilevel(comm, &h, &targets, &fixed, &cfg, &mut rng)
        });
        for r in &results[1..] {
            assert_eq!(*r, results[0]);
        }
        let part = &results[0];
        let cut = metrics::cutsize_connectivity(&h, part, 2);
        // Ideal vertical split of a 14x14 grid cuts 14 edges.
        assert!(cut <= 32.0, "cut {cut}");
        assert!(metrics::imbalance(&h, part, 2) <= 1.06);
    }
}
