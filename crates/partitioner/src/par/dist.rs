//! Memory-scalable distributed V-cycle over [`dlb_disthg`].
//!
//! The replicated SPMD driver ([`super::driver::par_multilevel`]) keeps
//! the whole hypergraph on every rank; this module runs the same
//! V-cycle with the *pin storage* — the asymptotically dominant term —
//! block-distributed: each rank stores only the nets touching its owned
//! vertex block (full pin lists, remote pins as ghosts; see DESIGN.md
//! §9). O(n) per-vertex arrays (partition, matching, weights, the
//! fine→coarse maps) stay replicated, which is what makes bit-identity
//! with the replicated driver provable:
//!
//! * **Matching** — a net not stored on rank `r` contains no `r`-owned
//!   pins, so skipping it preserves the replicated scoring loop's float
//!   accumulation order and first-touch order exactly.
//! * **Contraction** — the coarse hypergraph is built distributed: net
//!   owners remap and submit their nets, identical pin-sets are
//!   collapsed on a deterministic shard rank (costs summed in ascending
//!   fine-net order, exactly the replicated fold), and coarse net ids
//!   are assigned by the replicated first-occurrence order.
//! * **Refinement** — move proposals come from owned boundary vertices
//!   (local sigma rows are exact for them); the shared-state
//!   revalidation is decided by each move's owner rank and the boolean
//!   verdicts broadcast, so every rank applies the identical move
//!   sequence.
//!
//! Once the current level has at most `cfg.dist.gather_threshold`
//! vertices it is gathered onto every rank and the remaining levels run
//! the replicated code paths verbatim (coarse hypergraphs are tiny).

use std::collections::HashMap;

use dlb_disthg::DistHypergraph;
use dlb_hypergraph::{parallel, Hypergraph, PartId};
use dlb_mpisim::{BlockDist, Comm};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::coarsen::{contract_threads, CoarseLevel};
use crate::config::{CoarseningConfig, Config, PartTargets, RefinementConfig};
use crate::fixed::FixedAssignment;
use crate::initial::{initial_partition, score};
use crate::matching::Matching;
use crate::par::matching::{
    par_ipm_matching_threads, Proposal, CANDIDATE_FRACTION, MAX_ROUNDS,
};
use crate::par::refine::par_refine;
use crate::refine::{refine_threads, RefineScratch};

/// Per-rank memory/communication figures of one distributed V-cycle.
#[derive(Clone, Copy, Debug, Default)]
pub struct DistStats {
    /// Number of levels (including the finest) held in distributed form.
    pub dist_levels: usize,
    /// Largest local pin count of any single distributed level.
    pub peak_local_pins: usize,
    /// Sum of local pin counts over all simultaneously-alive
    /// distributed levels — the rank's peak pin storage for the cycle,
    /// including ghost copies of remote pins.
    pub total_local_pins: usize,
    /// Sum over levels of the *owned* (canonical) pin storage — each
    /// net counted once, at its owner, so the per-level sum across
    /// ranks equals the hypergraph's pin count. This is the share of
    /// storage that scales as `|pins|/p` regardless of net locality;
    /// `total_local_pins - total_owned_pins` is the ghost-copy
    /// overhead, which shrinks with rank count only when the vertex
    /// order localizes nets (meshes, banded matrices).
    pub total_owned_pins: usize,
    /// Largest ghost count of any distributed level.
    pub peak_ghosts: usize,
    /// Vertex count at which the hypergraph was gathered (0 = the input
    /// was already at or below the threshold; never distributed).
    pub gathered_vertices: usize,
}

impl DistStats {
    fn observe(&mut self, d: &DistLevel) {
        self.dist_levels += 1;
        self.peak_local_pins = self.peak_local_pins.max(d.dh.local_pin_count());
        self.total_local_pins += d.dh.local_pin_count();
        self.total_owned_pins += d.dh.owned_pin_count();
        self.peak_ghosts = self.peak_ghosts.max(d.dh.ghosts().len());
    }
}

/// One level held in distributed form: block-distributed pin storage
/// plus the replicated O(n) vertex attributes the mirrored kernels need.
#[derive(Clone)]
struct DistLevel {
    dh: DistHypergraph,
    /// Replicated primary vertex weights (`vwgt[v]` for every global `v`).
    vwgt: Vec<f64>,
    /// Replicated auxiliary load columns (`aux[c-1][v]` is constraint `c`
    /// of vertex `v`); empty in the scalar pipeline.
    aux: Vec<Vec<f64>>,
    /// Replicated vertex sizes (data-migration volumes).
    vsize: Vec<f64>,
    /// Replicated fixed-vertex constraint.
    fixed: FixedAssignment,
}

impl DistLevel {
    fn from_replicated(h: &Hypergraph, fixed: &FixedAssignment, rank: usize, size: usize) -> Self {
        DistLevel {
            dh: DistHypergraph::from_replicated(h, rank, size),
            vwgt: h.loads().scalar().to_vec(),
            aux: (1..h.load_arity()).map(|c| h.loads().constraint(c).to_vec()).collect(),
            vsize: h.vertex_sizes().to_vec(),
            fixed: fixed.clone(),
        }
    }

    /// Gathers the full hypergraph onto every rank (collective).
    fn gather(&self, comm: &mut Comm) -> (Hypergraph, FixedAssignment) {
        let mut gh = self.dh.gather_replicated(comm);
        gh.set_vertex_sizes(self.vsize.clone());
        if !self.aux.is_empty() {
            // The gathered replica only carries the scalar column; restore
            // the full load vectors so the replicated coarse solve sees
            // every constraint.
            let mut columns = Vec::with_capacity(1 + self.aux.len());
            columns.push(self.vwgt.clone());
            columns.extend(self.aux.iter().cloned());
            gh.set_loads(dlb_hypergraph::VertexLoads::from_columns(columns));
        }
        (gh, self.fixed.clone())
    }
}

/// One level of distributed matching — the exact mirror of the serial
/// selection path of [`par_ipm_matching_threads`], reading net structure
/// through the distributed storage. Nets a rank cannot see contain none
/// of its owned vertices, so its proposals are unchanged.
fn dist_ipm_matching(
    comm: &mut Comm,
    d: &DistLevel,
    cfg: &CoarseningConfig,
    rng: &mut StdRng,
) -> Matching {
    if cfg.local_ipm {
        return dist_local_ipm_matching(comm, d, cfg, rng);
    }
    let n = d.dh.num_vertices();
    let my_range = d.dh.my_range();
    let shared_draw: u64 = rng.gen();
    let mut my_rng = StdRng::seed_from_u64(
        shared_draw ^ (comm.rank() as u64).wrapping_mul(0xA5A5_5A5A_DEAD_BEEF),
    );

    let mut mate: Vec<usize> = (0..n).collect();
    let mut num_pairs = 0usize;
    let mut scores = vec![0.0f64; n];
    let mut touched: Vec<usize> = Vec::new();

    for _round in 0..MAX_ROUNDS {
        let mut my_unmatched: Vec<usize> = my_range.clone().filter(|&v| mate[v] == v).collect();
        my_unmatched.shuffle(&mut my_rng);
        let ncand = ((my_unmatched.len() as f64 * CANDIDATE_FRACTION).ceil() as usize)
            .min(my_unmatched.len());
        let mut my_cands = my_unmatched[..ncand].to_vec();
        my_cands.sort_unstable();

        let all_cands: Vec<usize> = comm.allgather(my_cands).into_iter().flatten().collect();
        if all_cands.is_empty() {
            break;
        }

        let mut taken = vec![false; n];
        let proposals: Vec<(f64, usize, usize)> = all_cands
            .iter()
            .map(|&u| {
                let best = dist_best_owned_partner(
                    &d.dh, u, &mate, &taken, &d.fixed, cfg, &my_range, &mut scores, &mut touched,
                );
                match best {
                    Some((w, s)) if !all_cands.contains(&w) || w > u => {
                        taken[w] = true;
                        (s, comm.rank(), w)
                    }
                    _ => (Proposal::NONE.score, Proposal::NONE.rank, Proposal::NONE.partner),
                }
            })
            .collect();

        let winners = comm.allreduce_vec(proposals, |a, b| {
            let pa = Proposal { score: a.0, rank: a.1, partner: a.2 };
            let pb = Proposal { score: b.0, rank: b.1, partner: b.2 };
            let w = Proposal::better_of(&pa, &pb);
            (w.score, w.rank, w.partner)
        });

        let mut matched_this_round = 0usize;
        for (&u, &(score, rank, partner)) in all_cands.iter().zip(&winners) {
            if rank == usize::MAX || score <= 0.0 {
                continue;
            }
            if mate[u] != u || mate[partner] != partner || u == partner {
                continue;
            }
            debug_assert!(d.fixed.compatible(u, partner));
            mate[u] = partner;
            mate[partner] = u;
            num_pairs += 1;
            matched_this_round += 1;
        }
        if matched_this_round == 0 {
            break;
        }
    }

    Matching { mate, num_pairs }
}

/// Mirror of `best_owned_partner` over distributed storage. For any
/// candidate `u`, the nets absent from this rank contain no pins in
/// `range`, so accumulation and first-touch order match the replicated
/// loop exactly. A candidate unknown to this rank simply scores nobody.
#[allow(clippy::too_many_arguments)]
fn dist_best_owned_partner(
    dh: &DistHypergraph,
    u: usize,
    mate: &[usize],
    taken: &[bool],
    fixed: &FixedAssignment,
    cfg: &CoarseningConfig,
    range: &std::ops::Range<usize>,
    scores: &mut [f64],
    touched: &mut Vec<usize>,
) -> Option<(usize, f64)> {
    touched.clear();
    for &lj in dh.vertex_local_nets(u) {
        let size = dh.net_size(lj);
        if size < 2 || size > cfg.max_net_size_for_matching {
            continue;
        }
        let contrib = if cfg.scaled_ipm {
            dh.net_cost(lj) / (size - 1) as f64
        } else {
            dh.net_cost(lj)
        };
        if contrib <= 0.0 {
            continue;
        }
        for &w in dh.net_pins(lj) {
            if w == u || !range.contains(&w) || mate[w] != w || taken[w] {
                continue;
            }
            if scores[w] == 0.0 {
                touched.push(w);
            }
            scores[w] += contrib;
        }
    }
    let mut best: Option<(usize, f64)> = None;
    for &w in touched.iter() {
        let s = scores[w];
        scores[w] = 0.0;
        if fixed.compatible(u, w) && best.is_none_or(|(_, bs)| s > bs) {
            best = Some((w, s));
        }
    }
    best
}

/// Mirror of `par_local_ipm_matching` over distributed storage: greedy
/// rank-local matching merged with one all-gather.
fn dist_local_ipm_matching(
    comm: &mut Comm,
    d: &DistLevel,
    cfg: &CoarseningConfig,
    rng: &mut StdRng,
) -> Matching {
    let n = d.dh.num_vertices();
    let my_range = d.dh.my_range();
    let shared_draw: u64 = rng.gen();
    let mut my_rng = StdRng::seed_from_u64(
        shared_draw ^ (comm.rank() as u64).wrapping_mul(0x0BAD_CAFE_F00D_BEEF),
    );

    let mut mate: Vec<usize> = (0..n).collect();
    let mut scores = vec![0.0f64; n];
    let mut touched: Vec<usize> = Vec::new();
    let taken = vec![false; n];

    let mut order: Vec<usize> = my_range.clone().collect();
    order.shuffle(&mut my_rng);
    let mut my_pairs: Vec<(usize, usize)> = Vec::new();
    for &u in &order {
        if mate[u] != u {
            continue;
        }
        if let Some((w, _)) = dist_best_owned_partner(
            &d.dh, u, &mate, &taken, &d.fixed, cfg, &my_range, &mut scores, &mut touched,
        ) {
            mate[u] = w;
            mate[w] = u;
            my_pairs.push((u.min(w), u.max(w)));
        }
    }

    let all_pairs: Vec<(usize, usize)> = comm.allgather(my_pairs).into_iter().flatten().collect();
    let mut mate: Vec<usize> = (0..n).collect();
    for &(u, w) in &all_pairs {
        debug_assert!(mate[u] == u && mate[w] == w, "ranks produced overlapping pairs");
        mate[u] = w;
        mate[w] = u;
    }
    Matching { mate, num_pairs: all_pairs.len() }
}

/// Deterministic shard rank for a coarse pin-set: every copy of an
/// identical pin-set lands on the same rank, which performs the
/// duplicate collapse for that set (FNV-1a over the pins).
fn pinset_shard(pins: &[usize], nranks: usize) -> usize {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &v in pins {
        hash ^= v as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash % nranks as u64) as usize
}

/// Distributed contraction: builds the coarse level without any rank
/// materializing the full coarse pin set. The coarse hypergraph equals
/// the replicated [`contract_threads`] output net-for-net:
///
/// 1. Vertex-level data (fine→coarse map, coarse weights/sizes/fixed)
///    is O(n) and computed replicated, exactly as the serial code does.
/// 2. Each fine net's owner remaps, sorts and dedups its pins (dropping
///    sub-2-pin nets) and submits `(fine_id, cost, pins)` to the
///    pin-set's shard rank.
/// 3. The shard processes its submissions in ascending fine-net order —
///    the replicated collapse order — so per-group cost sums are
///    bitwise identical, keyed by the group's first fine net.
/// 4. Coarse net ids are the positions of those first-occurrence keys
///    in globally sorted order, which reproduces the replicated
///    first-occurrence numbering; each coarse net is then routed to
///    every rank owning one of its pins.
fn dist_contract(comm: &mut Comm, d: &DistLevel, matching: &Matching) -> (DistLevel, Vec<usize>) {
    let n = d.dh.num_vertices();
    debug_assert!(matching.validate(&d.fixed).is_ok());

    // Replicated vertex-level contraction (same as the serial code).
    let mut fine_to_coarse = vec![usize::MAX; n];
    let mut next = 0usize;
    for v in 0..n {
        let m = matching.mate[v];
        if m >= v {
            fine_to_coarse[v] = next;
            if m != v {
                fine_to_coarse[m] = next;
            }
            next += 1;
        }
    }
    let nc = next;
    let mut cw = vec![0.0f64; nc];
    let mut cs = vec![0.0f64; nc];
    let mut cfixed_opts: Vec<Option<usize>> = vec![None; nc];
    for v in 0..n {
        let c = fine_to_coarse[v];
        cw[c] += d.vwgt[v];
        cs[c] += d.vsize[v];
        if let Some(p) = d.fixed.get(v) {
            debug_assert!(cfixed_opts[c].is_none_or(|q| q == p));
            cfixed_opts[c] = Some(p);
        }
    }
    // Auxiliary constraints sum per coarse vertex in the same fine order
    // (separate gated loop: the scalar pipeline adds no float ops).
    let mut caux: Vec<Vec<f64>> = Vec::with_capacity(d.aux.len());
    for col in &d.aux {
        let mut cc = vec![0.0f64; nc];
        for v in 0..n {
            cc[fine_to_coarse[v]] += col[v];
        }
        caux.push(cc);
    }

    // Owners submit remapped nets to their pin-set's shard rank.
    let nranks = comm.size();
    let mut outgoing: Vec<Vec<(usize, f64, Vec<usize>)>> = (0..nranks).map(|_| Vec::new()).collect();
    let mut pins: Vec<usize> = Vec::new();
    for lj in 0..d.dh.num_local_nets() {
        if !d.dh.owns_net(lj) {
            continue;
        }
        pins.clear();
        pins.extend(d.dh.net_pins(lj).iter().map(|&v| fine_to_coarse[v]));
        pins.sort_unstable();
        pins.dedup();
        if pins.len() < 2 {
            continue;
        }
        let shard = pinset_shard(&pins, nranks);
        outgoing[shard].push((d.dh.net_global_id(lj), d.dh.net_cost(lj), pins.clone()));
    }
    let mut submitted: Vec<(usize, f64, Vec<usize>)> =
        comm.alltoallv(outgoing).into_iter().flatten().collect();
    // Ascending fine-net order = the replicated collapse order.
    submitted.sort_unstable_by_key(|&(j, _, _)| j);

    // Collapse duplicates; a group is keyed by its first fine net id.
    let mut dedup: HashMap<Vec<usize>, usize> = HashMap::new();
    let mut groups: Vec<(usize, f64, Vec<usize>)> = Vec::new();
    for (j, cost, net) in submitted {
        match dedup.get(&net) {
            Some(&idx) => groups[idx].1 += cost,
            None => {
                dedup.insert(net.clone(), groups.len());
                groups.push((j, cost, net));
            }
        }
    }

    // Global coarse ids: the replicated construction appends a group
    // the first time its pin-set occurs while scanning fine nets in
    // order, so sorting the first-occurrence keys reproduces its ids.
    let my_keys: Vec<usize> = groups.iter().map(|g| g.0).collect();
    let mut all_keys: Vec<usize> = comm.allgather(my_keys).into_iter().flatten().collect();
    all_keys.sort_unstable();
    let num_coarse_nets = all_keys.len();

    // Route each coarse net to every rank owning one of its pins.
    let cdist = BlockDist::new(nc, nranks);
    let mut routed: Vec<Vec<(usize, f64, Vec<usize>)>> = (0..nranks).map(|_| Vec::new()).collect();
    for (min_j, cost, net) in groups {
        let cid = all_keys.binary_search(&min_j).expect("group key is present");
        let mut prev = usize::MAX;
        for &cv in &net {
            let owner = cdist.owner(cv);
            // Pins are sorted, so owner ranks arrive grouped.
            if owner != prev {
                routed[owner].push((cid, cost, net.clone()));
                prev = owner;
            }
        }
    }
    let mut local: Vec<(usize, f64, Vec<usize>)> =
        comm.alltoallv(routed).into_iter().flatten().collect();
    local.sort_unstable_by_key(|&(cid, _, _)| cid);

    let mut net_ids = Vec::with_capacity(local.len());
    let mut cost = Vec::with_capacity(local.len());
    let mut nets = Vec::with_capacity(local.len());
    for (cid, c, net) in local {
        net_ids.push(cid);
        cost.push(c);
        nets.push(net);
    }
    let owned_wgt = cw[cdist.range(comm.rank())].to_vec();
    let dh = DistHypergraph::from_local_nets(
        nc,
        num_coarse_nets,
        comm.rank(),
        nranks,
        net_ids,
        cost,
        nets,
        owned_wgt,
    );
    let coarse = DistLevel {
        dh,
        vwgt: cw,
        aux: caux,
        vsize: cs,
        fixed: FixedAssignment::from_options(&cfixed_opts),
    };
    (coarse, fine_to_coarse)
}

/// Mirror of `MoveScratch` (its fields are private to `refine`).
struct DistMoveScratch {
    mark: Vec<u64>,
    present: Vec<f64>,
    cands: Vec<usize>,
    stamp: u64,
}

impl DistMoveScratch {
    fn new(k: usize) -> Self {
        DistMoveScratch { mark: vec![0; k], present: vec![0.0; k], cands: Vec::new(), stamp: 0 }
    }
}

/// Partition state over distributed pin storage: sigma rows exist only
/// for locally visible nets; the partition vector and part weights stay
/// replicated (the replicated weight fold is part of the bit-identity
/// contract — see `PartitionState::new_threads`).
struct DistState<'a> {
    level: &'a DistLevel,
    k: usize,
    /// `sigma[lj*k + p]` = pins of local net `lj` in part `p`.
    sigma: Vec<u32>,
    weights: Vec<f64>,
    /// Per-part auxiliary loads, `aux_weights[(c-1)*k + p]`; empty when
    /// the level carries no auxiliary columns (mirror of
    /// `PartitionState::aux_weights`).
    aux_weights: Vec<f64>,
    part: Vec<PartId>,
}

impl<'a> DistState<'a> {
    fn new(level: &'a DistLevel, k: usize, part: Vec<PartId>) -> Self {
        assert_eq!(part.len(), level.dh.num_vertices());
        let mut sigma = vec![0u32; level.dh.num_local_nets() * k];
        for lj in 0..level.dh.num_local_nets() {
            for &v in level.dh.net_pins(lj) {
                sigma[lj * k + part[v]] += 1;
            }
        }
        // Chunk-folded exactly like `PartitionState::new` so the f64
        // weights are bitwise identical to the replicated state's.
        let part_ref = &part;
        let partials = parallel::map_chunks(
            1,
            part.len(),
            parallel::DEFAULT_CHUNK,
            |_, range| {
                let mut local = vec![0.0f64; k];
                for v in range {
                    local[part_ref[v]] += level.vwgt[v];
                }
                local
            },
        );
        let mut weights = vec![0.0f64; k];
        for local in partials {
            for p in 0..k {
                weights[p] += local[p];
            }
        }
        // Serial gated accumulation, like `PartitionState::new_threads`.
        let mut aux_weights = Vec::new();
        if !level.aux.is_empty() {
            aux_weights = vec![0.0f64; level.aux.len() * k];
            for (i, col) in level.aux.iter().enumerate() {
                let row = &mut aux_weights[i * k..(i + 1) * k];
                for (v, &p) in part.iter().enumerate() {
                    row[p] += col[v];
                }
            }
        }
        DistState { level, k, sigma, weights, aux_weights, part }
    }

    #[inline]
    fn sigma(&self, lj: usize, p: usize) -> u32 {
        self.sigma[lj * self.k + p]
    }

    /// Applies a move. Every rank calls this for every accepted move:
    /// the replicated part/weights update unconditionally, the sigma
    /// rows only for nets visible here (other nets have no local row).
    fn apply(&mut self, v: usize, q: PartId) {
        let p = self.part[v];
        if p == q {
            return;
        }
        for &lj in self.level.dh.vertex_local_nets(v) {
            self.sigma[lj * self.k + p] -= 1;
            self.sigma[lj * self.k + q] += 1;
        }
        let w = self.level.vwgt[v];
        self.weights[p] -= w;
        self.weights[q] += w;
        if !self.aux_weights.is_empty() {
            for (i, col) in self.level.aux.iter().enumerate() {
                self.aux_weights[i * self.k + p] -= col[v];
                self.aux_weights[i * self.k + q] += col[v];
            }
        }
        self.part[v] = q;
    }

    /// Mirror of `PartitionState::aux_fits`: true when moving `v` into
    /// `q` respects every auxiliary cap (no-op for scalar targets).
    #[inline]
    fn aux_fits(&self, v: usize, q: PartId, targets: &PartTargets) -> bool {
        for (i, a) in targets.aux.iter().enumerate() {
            if self.aux_weights[i * self.k + q] + self.level.aux[i][v] > a.cap(q) {
                return false;
            }
        }
        true
    }

    /// Exact gain of moving owned vertex `v` to `q` (an owned vertex's
    /// nets are all local, so this equals `PartitionState::gain`).
    fn gain(&self, v: usize, q: PartId) -> f64 {
        let p = self.part[v];
        if p == q {
            return 0.0;
        }
        let mut g = 0.0;
        for &lj in self.level.dh.vertex_local_nets(v) {
            let c = self.level.dh.net_cost(lj);
            if self.sigma(lj, p) == 1 {
                g += c;
            }
            if self.sigma(lj, q) == 0 {
                g -= c;
            }
        }
        g
    }

    /// Mirror of `PartitionState::best_move` for an owned vertex.
    fn best_move(
        &self,
        v: usize,
        targets: &PartTargets,
        scratch: &mut DistMoveScratch,
    ) -> Option<(PartId, f64)> {
        let p = self.part[v];
        scratch.stamp += 1;
        let stamp = scratch.stamp;

        let mut base = 0.0;
        let mut total = 0.0;
        for &lj in self.level.dh.vertex_local_nets(v) {
            let c = self.level.dh.net_cost(lj);
            total += c;
            if self.sigma(lj, p) == 1 {
                base += c;
            }
            for q in 0..self.k {
                if q != p && self.sigma(lj, q) > 0 {
                    if scratch.mark[q] != stamp {
                        scratch.mark[q] = stamp;
                        scratch.present[q] = 0.0;
                        scratch.cands.push(q);
                    }
                    scratch.present[q] += c;
                }
            }
        }

        let w = self.level.vwgt[v];
        let mut best: Option<(PartId, f64)> = None;
        for &q in &scratch.cands {
            if self.weights[q] + w > targets.cap(q) || !self.aux_fits(v, q, targets) {
                continue;
            }
            let gain = base - (total - scratch.present[q]);
            match best {
                Some((bq, bg)) => {
                    if gain > bg + 1e-12 || (gain > bg - 1e-12 && self.weights[q] < self.weights[bq])
                    {
                        best = Some((q, gain));
                    }
                }
                None => best = Some((q, gain)),
            }
        }
        scratch.cands.clear();
        best
    }

    /// Owned boundary vertices, ascending — the replicated boundary
    /// list restricted to the owned range (every net of an owned vertex
    /// is local, so no boundary vertex is missed).
    fn owned_boundary(&self) -> Vec<usize> {
        let range = self.level.dh.my_range();
        let mut flag = vec![false; range.len()];
        for lj in 0..self.level.dh.num_local_nets() {
            let cut = (0..self.k).filter(|&p| self.sigma(lj, p) > 0).count() > 1;
            if cut {
                for &v in self.level.dh.net_pins(lj) {
                    if range.contains(&v) {
                        flag[v - range.start] = true;
                    }
                }
            }
        }
        range.clone().filter(|&v| flag[v - range.start]).collect()
    }
}

/// Mirror of `crate::refine::rebalance` with the per-vertex scan
/// distributed: each rank scans its owned block for the best candidate
/// move (strict-max keeps the earliest vertex, as in the serial scan)
/// and an all-reduce picks the global best, tie-broken toward the
/// smaller vertex id — which, with ascending owned blocks, is exactly
/// the serial scan's earliest-strict-max winner.
fn dist_rebalance(
    comm: &mut Comm,
    state: &mut DistState<'_>,
    targets: &PartTargets,
    fixed: &FixedAssignment,
    scratch: &mut DistMoveScratch,
) {
    dlb_trace::count(dlb_trace::Counter::RebalanceInvocations, 1);
    let n = state.part.len();
    let max_moves = 2 * n + 16;
    let total_violation = |weights: &[f64]| -> f64 {
        weights.iter().enumerate().map(|(p, &w)| (w - targets.cap(p)).max(0.0)).sum()
    };
    let range = state.level.dh.my_range();
    for _ in 0..max_moves {
        let violation_before = total_violation(&state.weights);
        let over = (0..state.k)
            .filter(|&p| state.weights[p] > targets.cap(p) + 1e-9)
            .max_by(|&a, &b| {
                (state.weights[a] - targets.cap(a)).total_cmp(&(state.weights[b] - targets.cap(b)))
            });
        let p = match over {
            Some(p) => p,
            None => return,
        };
        let mut best: Option<(usize, PartId, f64)> = None;
        for v in range.clone() {
            if state.part[v] != p || fixed.is_fixed(v) {
                continue;
            }
            let w = state.level.vwgt[v];
            let candidate = match state.best_move(v, targets, scratch) {
                Some((q, g)) => Some((q, g)),
                None => {
                    let q = (0..state.k)
                        .filter(|&q| q != p)
                        .min_by(|&a, &b| {
                            ((state.weights[a] + w) / targets.target[a].max(1e-12)).total_cmp(
                                &((state.weights[b] + w) / targets.target[b].max(1e-12)),
                            )
                        })
                        .unwrap();
                    Some((q, state.gain(v, q)))
                }
            };
            if let Some((q, g)) = candidate {
                if best.is_none_or(|(_, _, bg)| g > bg) {
                    best = Some((v, q, g));
                }
            }
        }
        let entry = match best {
            Some((v, q, g)) => (g, v, q),
            None => (f64::NEG_INFINITY, usize::MAX, usize::MAX),
        };
        let (_, v, q) = comm.allreduce(entry, |a, b| {
            match a.0.total_cmp(&b.0) {
                std::cmp::Ordering::Greater => a,
                std::cmp::Ordering::Less => b,
                std::cmp::Ordering::Equal => {
                    if a.1 <= b.1 {
                        a
                    } else {
                        b
                    }
                }
            }
        });
        if v == usize::MAX {
            return;
        }
        state.apply(v, q);
        if total_violation(&state.weights) >= violation_before - 1e-12 {
            state.apply(v, p);
            return;
        }
    }
}

/// One distributed refinement pass — mirror of `par_pass`. Proposals
/// come from a private state copy per rank; revalidation against the
/// evolving shared state needs each move's exact gain, which only the
/// proposing (owner) rank can compute, so the owner decides its batch
/// and broadcasts the verdicts. Every rank then applies the identical
/// accepted sequence, keeping part vector and weights in lockstep.
fn dist_pass(
    comm: &mut Comm,
    state: &mut DistState<'_>,
    targets: &PartTargets,
    fixed: &FixedAssignment,
    rng: &mut StdRng,
) -> usize {
    let shared_draw: u64 = rng.gen();
    let mut my_rng = StdRng::seed_from_u64(
        shared_draw ^ (comm.rank() as u64).wrapping_mul(0xC0FF_EE00_1234_5678),
    );

    // Propose on a private copy so a rank's own proposals compose.
    let my_moves = {
        let mut private = DistState::new(state.level, state.k, state.part.clone());
        let mut scratch = DistMoveScratch::new(targets.k());
        let mut boundary: Vec<usize> =
            private.owned_boundary().into_iter().filter(|&v| !fixed.is_fixed(v)).collect();
        boundary.shuffle(&mut my_rng);
        let mut moves: Vec<(usize, PartId)> = Vec::new();
        for v in boundary {
            if let Some((to, gain)) = private.best_move(v, targets, &mut scratch) {
                if gain > 0.0
                    || (gain == 0.0
                        && private.weights[private.part[v]] > targets.target[private.part[v]])
                {
                    private.apply(v, to);
                    moves.push((v, to));
                }
            }
        }
        moves
    };

    let all_moves: Vec<Vec<(usize, PartId)>> = comm.allgather(my_moves);
    let mut applied = 0usize;
    for (r, rank_moves) in all_moves.iter().enumerate() {
        // Rank r owns every vertex in its batch, so only it can
        // revalidate gains; it decides sequentially against the shared
        // state (applying as it goes) and broadcasts the verdicts.
        let decisions: Vec<bool> = if comm.rank() == r {
            let mut verdicts = Vec::with_capacity(rank_moves.len());
            for &(v, to) in rank_moves {
                let ok = if fixed.is_fixed(v) || state.part[v] == to {
                    false
                } else {
                    let w = state.level.vwgt[v];
                    if state.weights[to] + w > targets.cap(to) || !state.aux_fits(v, to, targets) {
                        false
                    } else {
                        let gain = state.gain(v, to);
                        gain > 0.0
                            || (gain == 0.0
                                && state.weights[state.part[v]] > state.weights[to] + w)
                    }
                };
                if ok {
                    state.apply(v, to);
                }
                verdicts.push(ok);
            }
            verdicts
        } else {
            vec![false; rank_moves.len()]
        };
        let decisions = comm.broadcast(r, decisions);
        if comm.rank() != r {
            for (&(v, to), &ok) in rank_moves.iter().zip(&decisions) {
                if ok {
                    state.apply(v, to);
                }
            }
        }
        applied += decisions.iter().filter(|&&ok| ok).count();
    }
    applied
}

/// Distributed refinement at one level — mirror of [`par_refine`].
///
/// Multi-constraint caps are enforced on every move via `aux_fits`, but
/// the greedy repair pass has no distributed mirror: repair quality for
/// multi-constraint runs flows through the gathered replicated coarse
/// solve (which calls `refine_threads`) and the replicated levels.
fn dist_refine(
    comm: &mut Comm,
    level: &DistLevel,
    targets: &PartTargets,
    part: &mut Vec<PartId>,
    cfg: &RefinementConfig,
    rng: &mut StdRng,
) {
    let k = targets.k();
    if k < 2 || level.dh.num_vertices() == 0 {
        return;
    }
    let mut state = DistState::new(level, k, std::mem::take(part));
    let mut scratch = DistMoveScratch::new(k);
    dist_rebalance(comm, &mut state, targets, &level.fixed, &mut scratch);
    for _ in 0..cfg.max_passes {
        let moved = dist_pass(comm, &mut state, targets, &level.fixed, rng);
        if moved == 0 {
            break;
        }
    }
    *part = state.part;
}

/// A level of the mixed hierarchy: its coarse hypergraph in whichever
/// representation it was built, plus the fine→coarse projection map.
enum Level {
    Repl(CoarseLevel),
    Dist(DistLevel, Vec<usize>),
}

/// Borrowed view of the current coarsest hypergraph.
enum View<'a> {
    Repl(&'a Hypergraph, &'a FixedAssignment),
    Dist(&'a DistLevel),
}

impl View<'_> {
    fn num_vertices(&self) -> usize {
        match self {
            View::Repl(h, _) => h.num_vertices(),
            View::Dist(d) => d.dh.num_vertices(),
        }
    }
}

fn current_view<'a>(
    h: &'a Hypergraph,
    fixed: &'a FixedAssignment,
    finest_dist: &'a Option<DistLevel>,
    levels: &'a [Level],
    gathered: &'a Option<(Hypergraph, FixedAssignment)>,
) -> View<'a> {
    if let Some((gh, gf)) = gathered {
        return View::Repl(gh, gf);
    }
    match levels.last() {
        Some(Level::Repl(l)) => View::Repl(&l.coarse, &l.coarse_fixed),
        Some(Level::Dist(d, _)) => View::Dist(d),
        None => match finest_dist {
            Some(d) => View::Dist(d),
            None => View::Repl(h, fixed),
        },
    }
}

/// One distributed multilevel V-cycle. Collective; every rank returns
/// the identical assignment — bit-identical to
/// [`super::driver::par_multilevel`] at the same rank count.
pub fn dist_multilevel(
    comm: &mut Comm,
    h: &Hypergraph,
    targets: &PartTargets,
    fixed: &FixedAssignment,
    cfg: &Config,
    rng: &mut StdRng,
) -> Vec<PartId> {
    dist_multilevel_stats(comm, h, targets, fixed, cfg, rng).0
}

/// [`dist_multilevel`] also reporting this rank's memory figures.
pub fn dist_multilevel_stats(
    comm: &mut Comm,
    h: &Hypergraph,
    targets: &PartTargets,
    fixed: &FixedAssignment,
    cfg: &Config,
    rng: &mut StdRng,
) -> (Vec<PartId>, DistStats) {
    let k = targets.k();
    let mut stats = DistStats::default();
    if k == 1 {
        return (vec![0; h.num_vertices()], stats);
    }
    if h.num_vertices() == 0 {
        return (Vec::new(), stats);
    }
    let threads = (parallel::resolve_threads(cfg.threads) / comm.size()).max(1);
    let mut scratch = RefineScratch::new();
    let coarse_target =
        (cfg.coarsening.coarse_to_factor * k).max(cfg.coarsening.min_coarse_vertices);
    let gather_threshold = cfg.dist.gather_threshold;
    let ml_span = dlb_trace::span!(
        "dist.multilevel",
        vertices = h.num_vertices(),
        k = k,
        ranks = comm.size(),
        gather_threshold = gather_threshold,
    );

    // --- Coarsening: distributed while large, replicated once small. ---
    let finest_dist: Option<DistLevel> = if h.num_vertices() > gather_threshold {
        let d = DistLevel::from_replicated(h, fixed, comm.rank(), comm.size());
        stats.observe(&d);
        Some(d)
    } else {
        None
    };
    let mut levels: Vec<Level> = Vec::new();
    // A gathered replica of the current coarsest level, once it shrank
    // under the threshold while still distributed.
    let mut gathered: Option<(Hypergraph, FixedAssignment)> = None;

    enum Step {
        Gather(Hypergraph, FixedAssignment, usize),
        Push(Level),
        Stop,
    }
    loop {
        let span = dlb_trace::span!("dist.coarsen.level", level = levels.len());
        let stats_before = comm.stats();
        let step = {
            let view = current_view(h, fixed, &finest_dist, &levels, &gathered);
            let before = view.num_vertices();
            if before <= coarse_target || levels.len() >= cfg.coarsening.max_levels {
                Step::Stop
            } else {
                match view {
                    View::Dist(d) if before <= gather_threshold => {
                        let (gh, gf) = d.gather(comm);
                        Step::Gather(gh, gf, before)
                    }
                    View::Dist(d) => {
                        let matching = dist_ipm_matching(comm, d, &cfg.coarsening, rng);
                        let after = matching.coarse_count();
                        if ((before - after) as f64) < before as f64 * cfg.coarsening.min_reduction
                        {
                            Step::Stop // unsuccessful coarsening (10% rule)
                        } else {
                            let (coarse, fine_to_coarse) = dist_contract(comm, d, &matching);
                            stats.observe(&coarse);
                            Step::Push(Level::Dist(coarse, fine_to_coarse))
                        }
                    }
                    View::Repl(ch, cf) => {
                        let matching = par_ipm_matching_threads(
                            comm, ch, cf, &cfg.coarsening, rng, threads,
                        );
                        let after = matching.coarse_count();
                        if ((before - after) as f64) < before as f64 * cfg.coarsening.min_reduction
                        {
                            Step::Stop
                        } else {
                            Step::Push(Level::Repl(contract_threads(ch, &matching, cf, threads)))
                        }
                    }
                }
            }
        };
        crate::par::driver::attr_comm_delta(&span, stats_before, comm.stats());
        match step {
            Step::Gather(gh, gf, n) => {
                span.attr("gathered", true);
                stats.gathered_vertices = n;
                gathered = Some((gh, gf));
            }
            Step::Push(level) => {
                dlb_trace::count(dlb_trace::Counter::CoarsenLevels, 1);
                gathered = None;
                levels.push(level);
            }
            Step::Stop => break,
        }
    }

    // The coarse solve needs a replicated coarsest; force the gather if
    // coarsening stopped early while still distributed.
    if gathered.is_none() {
        if let View::Dist(d) = current_view(h, fixed, &finest_dist, &levels, &gathered) {
            stats.gathered_vertices = d.dh.num_vertices();
            gathered = Some(d.gather(comm));
        }
    }

    // --- Coarse partitioning: identical to the replicated driver. ---
    let (coarsest_h, coarsest_fixed): (&Hypergraph, &FixedAssignment) =
        match current_view(h, fixed, &finest_dist, &levels, &gathered) {
            View::Repl(ch, cf) => (ch, cf),
            View::Dist(_) => unreachable!("coarsest was gathered above"),
        };
    let init_span = dlb_trace::span!("dist.initial", vertices = coarsest_h.num_vertices());
    let init_stats = comm.stats();
    dlb_trace::count(dlb_trace::Counter::CoarseVertices, coarsest_h.num_vertices() as u64);
    dlb_trace::count(dlb_trace::Counter::CoarseNets, coarsest_h.num_nets() as u64);
    dlb_trace::count(dlb_trace::Counter::CoarsePins, coarsest_h.num_pins() as u64);
    let shared_draw: u64 = rng.gen();
    let mut my_rng = StdRng::seed_from_u64(
        shared_draw ^ (comm.rank() as u64).wrapping_mul(0x1357_9BDF_2468_ACE0),
    );
    let mut my_part =
        initial_partition(coarsest_h, targets, coarsest_fixed, &cfg.initial, &mut my_rng);
    refine_threads(
        coarsest_h,
        targets,
        coarsest_fixed,
        &mut my_part,
        &cfg.refinement,
        &mut my_rng,
        threads,
        &mut scratch,
    );
    let my_score = score(coarsest_h, &my_part, targets);
    let (_, winner) = comm.allreduce((my_score, comm.rank()), |a, b| match a.0.total_cmp(&b.0) {
        std::cmp::Ordering::Less => a,
        std::cmp::Ordering::Greater => b,
        std::cmp::Ordering::Equal => {
            if a.1 <= b.1 {
                a
            } else {
                b
            }
        }
    });
    let mut part = comm.broadcast(winner, my_part);
    crate::par::driver::attr_comm_delta(&init_span, init_stats, comm.stats());
    drop(init_span);

    // --- Uncoarsening: refine in whichever form each level is held. ---
    // Levels are numbered with 0 = the original (finest) hypergraph.
    for (i, level) in levels.iter().enumerate().rev() {
        let span = dlb_trace::span!("dist.refine.level", level = i + 1);
        let stats_before = comm.stats();
        let before_part = dlb_trace::enabled().then(|| part.clone());
        let fine_to_coarse = match level {
            Level::Repl(l) => {
                par_refine(comm, &l.coarse, targets, &l.coarse_fixed, &mut part, &cfg.refinement, rng);
                &l.fine_to_coarse
            }
            Level::Dist(d, fine_to_coarse) => {
                dist_refine(comm, d, targets, &mut part, &cfg.refinement, rng);
                fine_to_coarse
            }
        };
        crate::par::driver::record_committed_moves(&span, before_part.as_deref(), &part);
        crate::par::driver::attr_comm_delta(&span, stats_before, comm.stats());
        drop(span);
        let mut finer = vec![0usize; fine_to_coarse.len()];
        for (v, &c) in fine_to_coarse.iter().enumerate() {
            finer[v] = part[c];
        }
        part = finer;
    }
    // Final refinement at the finest level.
    {
        let span = dlb_trace::span!("dist.refine.level", level = 0usize);
        let stats_before = comm.stats();
        let before_part = dlb_trace::enabled().then(|| part.clone());
        match &finest_dist {
            Some(d) => dist_refine(comm, d, targets, &mut part, &cfg.refinement, rng),
            None => par_refine(comm, h, targets, fixed, &mut part, &cfg.refinement, rng),
        }
        crate::par::driver::record_committed_moves(&span, before_part.as_deref(), &part);
        crate::par::driver::attr_comm_delta(&span, stats_before, comm.stats());
    }
    drop(ml_span);
    (part, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_mpisim::run_spmd;

    fn dist_cfg(seed: u64, gather_threshold: usize) -> Config {
        let mut cfg = Config::seeded(seed);
        cfg.dist.distributed = true;
        cfg.dist.gather_threshold = gather_threshold;
        cfg
    }

    /// The distributed V-cycle must be bit-identical to the replicated
    /// driver at the same rank count, for every rank count.
    #[test]
    fn dist_multilevel_matches_replicated_driver() {
        let h = crate::tests::grid_hypergraph(16, 16);
        let targets = PartTargets::uniform(h.total_vertex_weight(), 4, 0.05);
        let fixed = FixedAssignment::free(h.num_vertices());
        for ranks in [1usize, 2, 4] {
            let cfg = dist_cfg(11, 60);
            let repl = run_spmd(ranks, |comm| {
                let mut rng = StdRng::seed_from_u64(2);
                super::super::driver::par_multilevel(comm, &h, &targets, &fixed, &cfg, &mut rng)
            });
            let dist = run_spmd(ranks, |comm| {
                let mut rng = StdRng::seed_from_u64(2);
                dist_multilevel(comm, &h, &targets, &fixed, &cfg, &mut rng)
            });
            assert_eq!(dist, repl, "ranks={ranks}");
            for r in &dist[1..] {
                assert_eq!(*r, dist[0], "ranks themselves disagree at {ranks}");
            }
        }
    }

    /// Same check on an irregular hypergraph with fixed vertices and a
    /// non-uniform (proportional) target, plus local IPM.
    #[test]
    fn dist_multilevel_matches_with_fixed_and_local_ipm() {
        let h = crate::tests::random_hypergraph(300, 600, 5, 29);
        let targets = PartTargets::proportional(h.total_vertex_weight(), &[2, 1], 0.06);
        let mut fixed = FixedAssignment::free(300);
        for v in (0..300).step_by(17) {
            fixed.fix(v, v % 2);
        }
        for local_ipm in [false, true] {
            for ranks in [1usize, 2, 3] {
                let mut cfg = dist_cfg(7, 100);
                cfg.coarsening.local_ipm = local_ipm;
                let repl = run_spmd(ranks, |comm| {
                    let mut rng = StdRng::seed_from_u64(5);
                    super::super::driver::par_multilevel(comm, &h, &targets, &fixed, &cfg, &mut rng)
                });
                let dist = run_spmd(ranks, |comm| {
                    let mut rng = StdRng::seed_from_u64(5);
                    dist_multilevel(comm, &h, &targets, &fixed, &cfg, &mut rng)
                });
                assert_eq!(dist, repl, "ranks={ranks} local_ipm={local_ipm}");
            }
        }
    }

    /// With the threshold above the input size the distributed driver
    /// degenerates to the replicated code path (no distributed levels).
    #[test]
    fn threshold_above_input_means_no_distribution() {
        let h = crate::tests::grid_hypergraph(10, 10);
        let targets = PartTargets::uniform(100.0, 2, 0.05);
        let fixed = FixedAssignment::free(100);
        let cfg = dist_cfg(3, 1_000);
        let results = run_spmd(2, |comm| {
            let mut rng = StdRng::seed_from_u64(9);
            dist_multilevel_stats(comm, &h, &targets, &fixed, &cfg, &mut rng)
        });
        for (_, stats) in &results {
            assert_eq!(stats.dist_levels, 0);
            assert_eq!(stats.gathered_vertices, 0);
        }
    }

    /// Pin storage must shrink with the rank count while the partition
    /// stays the same as the replicated driver's.
    #[test]
    fn local_pins_scale_down_with_ranks() {
        let h = crate::tests::grid_hypergraph(20, 20);
        let targets = PartTargets::uniform(h.total_vertex_weight(), 2, 0.05);
        let fixed = FixedAssignment::free(h.num_vertices());
        let cfg = dist_cfg(13, 80);
        let mut peak_by_ranks = Vec::new();
        for ranks in [1usize, 2, 4] {
            let results = run_spmd(ranks, |comm| {
                let mut rng = StdRng::seed_from_u64(4);
                dist_multilevel_stats(comm, &h, &targets, &fixed, &cfg, &mut rng)
            });
            let max_total =
                results.iter().map(|(_, s)| s.total_local_pins).max().unwrap();
            let max_owned =
                results.iter().map(|(_, s)| s.total_owned_pins).max().unwrap();
            assert!(results.iter().all(|(_, s)| s.dist_levels > 0));
            assert!(max_owned <= max_total);
            peak_by_ranks.push((max_total, max_owned));
        }
        // On a mesh the block distribution localizes nets, so even the
        // ghost-inclusive figure shrinks; the canonical (owned) share
        // shrinks regardless of locality.
        assert!(
            peak_by_ranks[0].0 > peak_by_ranks[1].0 && peak_by_ranks[1].0 > peak_by_ranks[2].0,
            "per-rank pin storage should strictly decrease: {peak_by_ranks:?}"
        );
        assert!(
            peak_by_ranks[0].1 > peak_by_ranks[1].1 && peak_by_ranks[1].1 > peak_by_ranks[2].1,
            "per-rank owned pin storage should strictly decrease: {peak_by_ranks:?}"
        );
    }

    /// The `cfg.dist.distributed` flag routes the whole recursive
    /// bisection stack through this driver with unchanged results.
    #[test]
    fn config_flag_routes_partition_identically() {
        let h = crate::tests::random_hypergraph(250, 500, 4, 31);
        for ranks in [1usize, 2, 4] {
            let mut cfg = dist_cfg(19, 64);
            let dist = run_spmd(ranks, |comm| {
                crate::par::parallel_partition(comm, &h, 4, &cfg)
            });
            cfg.dist.distributed = false;
            let repl = run_spmd(ranks, |comm| {
                crate::par::parallel_partition(comm, &h, 4, &cfg)
            });
            for (a, b) in dist.iter().zip(&repl) {
                assert_eq!(a.part, b.part, "ranks={ranks}");
                assert_eq!(a.cut, b.cut, "ranks={ranks}");
            }
        }
    }
}
