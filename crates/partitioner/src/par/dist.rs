//! Memory-scalable distributed V-cycle over [`dlb_disthg`].
//!
//! The replicated SPMD driver ([`super::driver::par_multilevel`]) keeps
//! the whole hypergraph on every rank; this module runs the same
//! V-cycle with **owner-computes** storage: each net's full pin list
//! lives only on its owner rank, other pin-owning ranks hold compact
//! stubs, and every per-vertex array — partition vector, primary and
//! auxiliary loads, vertex sizes, fixed assignments, and the
//! fine→coarse projection maps — is block-distributed alongside the
//! vertex blocks (see DESIGN.md §9). Remote state crosses the wire only
//! through explicit ghost halos ([`dlb_disthg::GhostExchange`]), and
//! after the first full pull each FM round pushes only the vertices
//! that actually moved (the dirty-bitmap incremental exchange of
//! DESIGN.md §17). Per-rank residency is `O((n + |pins|)/p + halo)`
//! with no term proportional to the global instance.
//!
//! Bit-identity with the replicated driver is preserved:
//!
//! * **Matching** — a stub stores this rank's own pins *in net order*,
//!   so per-candidate scoring sweeps exactly the elements the
//!   replicated loop restricted to the owned range would visit, in the
//!   same order (same float accumulation, same first-touch order).
//!   Global candidates travel with their complete ascending net-id
//!   lists, attached by their owner rank.
//! * **Contraction** — coarse vertex ids follow the replicated
//!   ascending-representative numbering (rank blocks prefix-summed);
//!   per-coarse-vertex attributes are accumulated at the coarse owner
//!   in ascending fine order (at most two contributions each, the
//!   replicated add order); identical coarse pin-sets collapse on a
//!   deterministic shard rank in ascending fine-net order; and the
//!   coarse net shares are routed owner-computes again.
//! * **Refinement** — sigma rows cover every locally visible net (an
//!   owned net's row is exact via the ghost-part cache; a stub's row is
//!   kept exact by per-move delta events from the net's owner), so an
//!   owner rank's gains are exact. Verdicts are decided by each move's
//!   owner against the evolving state and broadcast; replicated part
//!   *weights* (an O(k) vector, not O(n)) update in lockstep on every
//!   rank through the proposal payloads.
//!
//! Once the current level has at most `cfg.dist.gather_threshold`
//! vertices it is gathered onto every rank and the remaining levels run
//! the replicated code paths verbatim (coarse hypergraphs are tiny).

use std::collections::{HashMap, HashSet};

use dlb_disthg::{DistHypergraph, GhostExchange, GhostHalo, NetShare};
use dlb_hypergraph::{parallel, Hypergraph, PartId};
use dlb_mpisim::{BlockDist, Comm};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::coarsen::{contract_threads, CoarseLevel};
use crate::config::{CoarseningConfig, Config, PartTargets, RefinementConfig};
use crate::fixed::FixedAssignment;
use crate::initial::{initial_partition, score};
use crate::par::matching::{draw_candidates, par_ipm_matching_threads, Proposal, MAX_ROUNDS};
use crate::par::refine::{accepts_proposal, accepts_revalidated, par_refine};
use crate::refine::{refine_threads, RefineScratch};

/// Per-rank memory/communication figures of one distributed V-cycle.
#[derive(Clone, Copy, Debug, Default)]
pub struct DistStats {
    /// Number of levels (including the finest) held in distributed form.
    pub dist_levels: usize,
    /// Largest local pin count of any single distributed level.
    pub peak_local_pins: usize,
    /// Sum of local pin counts over all simultaneously-alive
    /// distributed levels — the rank's peak pin storage for the cycle,
    /// including stub copies of its own pins under remote nets.
    pub total_local_pins: usize,
    /// Sum over levels of the *owned* (canonical) pin storage — each
    /// net counted once, at its owner, so the per-level sum across
    /// ranks equals the hypergraph's pin count.
    pub total_owned_pins: usize,
    /// Largest ghost count of any distributed level.
    pub peak_ghosts: usize,
    /// Sum over levels of the rank's **total** resident bytes: pin
    /// storage (owned lists + stubs + transpose), per-net metadata, and
    /// every per-vertex array the driver holds (owned weight/size/fixed
    /// blocks, auxiliary load columns, the partition slice, the
    /// fine→coarse map, and the ghost-part cache). This is the
    /// end-to-end memory-scaling figure of merit: it must shrink with
    /// the rank count on any input, localized or not.
    pub total_resident_bytes: usize,
    /// Largest per-level resident byte count (same accounting).
    pub peak_resident_bytes: usize,
    /// Vertex count at which the hypergraph was gathered (0 = the input
    /// was already at or below the threshold; never distributed).
    pub gathered_vertices: usize,
}

impl DistStats {
    fn observe(&mut self, d: &DistLevel) {
        self.dist_levels += 1;
        self.peak_local_pins = self.peak_local_pins.max(d.dh.local_pin_count());
        self.total_local_pins += d.dh.local_pin_count();
        self.total_owned_pins += d.dh.owned_pin_count();
        self.peak_ghosts = self.peak_ghosts.max(d.dh.ghosts().len());
        let bytes = d.resident_bytes();
        self.total_resident_bytes += bytes;
        self.peak_resident_bytes = self.peak_resident_bytes.max(bytes);
    }
}

/// One level held in distributed form: owner-computes pin storage plus
/// this rank's *owned block* of every per-vertex attribute. Nothing in
/// a `DistLevel` is proportional to the global vertex count.
#[derive(Clone)]
struct DistLevel {
    dh: DistHypergraph,
    /// Owned auxiliary load columns (`aux[c-1][off]` is constraint `c`
    /// of owned vertex `start + off`); empty in the scalar pipeline.
    aux: Vec<Vec<f64>>,
    /// Owned vertex sizes (data-migration volumes).
    vsize: Vec<f64>,
    /// Owned fixed-vertex constraints.
    fixed: Vec<Option<PartId>>,
}

impl DistLevel {
    fn from_replicated(h: &Hypergraph, fixed: &FixedAssignment, rank: usize, size: usize) -> Self {
        let dh = DistHypergraph::from_replicated(h, rank, size);
        let my_range = dh.my_range();
        DistLevel {
            aux: (1..h.load_arity())
                .map(|c| h.loads().constraint(c)[my_range.clone()].to_vec())
                .collect(),
            vsize: h.vertex_sizes()[my_range.clone()].to_vec(),
            fixed: my_range.clone().map(|v| fixed.get(v)).collect(),
            dh,
        }
    }

    /// Fixed constraint of owned offset `off` as the wire encoding
    /// (-1 = free) used by matching candidate records.
    #[inline]
    fn fixed_i64(&self, off: usize) -> i64 {
        self.fixed[off].map_or(-1, |p| p as i64)
    }

    /// Total bytes this rank keeps resident for the level: the
    /// hypergraph share plus the owned per-vertex blocks the driver
    /// carries (vertex size, fixed flag, partition slice, fine→coarse
    /// map entry, auxiliary columns) and the ghost-part cache.
    fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        let owned = self.dh.my_range().len();
        self.dh.resident_bytes()
            + owned * (size_of::<f64>() + size_of::<Option<PartId>>() + 2 * size_of::<usize>())
            + self.aux.len() * owned * size_of::<f64>()
            + std::mem::size_of_val(self.dh.ghosts())
    }

    /// Gathers the full hypergraph onto every rank (collective).
    fn gather(&self, comm: &mut Comm) -> (Hypergraph, FixedAssignment) {
        let mut gh = self.dh.gather_replicated(comm);
        let vsizes: Vec<f64> = comm.allgather(self.vsize.clone()).into_iter().flatten().collect();
        gh.set_vertex_sizes(vsizes);
        if !self.aux.is_empty() {
            // The gathered replica only carries the scalar column;
            // restore the full load vectors so the replicated coarse
            // solve sees every constraint.
            let mut columns = Vec::with_capacity(1 + self.aux.len());
            columns.push(gh.loads().scalar().to_vec());
            for col in &self.aux {
                columns.push(comm.allgather(col.clone()).into_iter().flatten().collect());
            }
            gh.set_loads(dlb_hypergraph::VertexLoads::from_columns(columns));
        }
        let fixed_opts: Vec<Option<PartId>> =
            comm.allgather(self.fixed.clone()).into_iter().flatten().collect();
        (gh, FixedAssignment::from_options(&fixed_opts))
    }
}

/// A matching over block-distributed vertices: `mate[off]` is the
/// global mate of owned vertex `start + off` (itself if unmatched).
struct DistMatching {
    mate: Vec<usize>,
    /// Global pair count (identical on every rank).
    num_pairs: usize,
}

impl DistMatching {
    fn coarse_count(&self, n: usize) -> usize {
        n - self.num_pairs
    }
}

/// A matching candidate on the wire: the vertex, its fixed constraint
/// (-1 = free), and its complete incidence list as ascending global net
/// ids — attached by the owner rank, whose transpose is complete for
/// owned vertices.
type CandRecord = (usize, i64, Vec<usize>);

/// One level of distributed matching — the exact mirror of the serial
/// selection path of [`par_ipm_matching_threads`], reading net structure
/// through the owner-computes storage. A net this rank cannot see
/// contains none of its owned vertices, so its proposals are unchanged.
fn dist_ipm_matching(
    comm: &mut Comm,
    d: &DistLevel,
    cfg: &CoarseningConfig,
    rng: &mut StdRng,
) -> DistMatching {
    if cfg.local_ipm {
        return dist_local_ipm_matching(comm, d, cfg, rng);
    }
    let my_range = d.dh.my_range();
    let start = my_range.start;
    let owned = my_range.len();
    let shared_draw: u64 = rng.gen();
    let mut my_rng = StdRng::seed_from_u64(
        shared_draw ^ (comm.rank() as u64).wrapping_mul(0xA5A5_5A5A_DEAD_BEEF),
    );

    let mut mate: Vec<usize> = my_range.clone().collect();
    let mut num_pairs = 0usize;
    let mut scores = vec![0.0f64; owned];
    let mut touched: Vec<usize> = Vec::new();

    for _round in 0..MAX_ROUNDS {
        let my_unmatched: Vec<usize> =
            my_range.clone().filter(|&v| mate[v - start] == v).collect();
        let my_cands = draw_candidates(my_unmatched, &mut my_rng);
        let my_records: Vec<CandRecord> = my_cands
            .iter()
            .map(|&u| {
                let gids: Vec<usize> = d
                    .dh
                    .vertex_local_nets(u)
                    .iter()
                    .map(|&lj| d.dh.net_global_id(lj))
                    .collect();
                (u, d.fixed_i64(u - start), gids)
            })
            .collect();
        let records: Vec<CandRecord> =
            comm.allgather(my_records).into_iter().flatten().collect();
        if records.is_empty() {
            break;
        }
        let cand_ids: Vec<usize> = records.iter().map(|r| r.0).collect();

        let mut taken = vec![false; owned];
        let proposals: Vec<(f64, usize, usize)> = records
            .iter()
            .map(|(u, u_fixed, gids)| {
                let best = dist_best_owned_partner(
                    d,
                    *u,
                    *u_fixed,
                    gids.iter().filter_map(|&g| d.dh.local_net_index(g)),
                    &mate,
                    &taken,
                    cfg,
                    &mut scores,
                    &mut touched,
                );
                match best {
                    Some((w, s)) if !cand_ids.contains(&w) || w > *u => {
                        taken[w - start] = true;
                        (s, comm.rank(), w)
                    }
                    _ => (Proposal::NONE.score, Proposal::NONE.rank, Proposal::NONE.partner),
                }
            })
            .collect();

        let winners = comm.allreduce_vec(proposals, |a, b| {
            let pa = Proposal { score: a.0, rank: a.1, partner: a.2 };
            let pb = Proposal { score: b.0, rank: b.1, partner: b.2 };
            let w = Proposal::better_of(&pa, &pb);
            (w.score, w.rank, w.partner)
        });

        // Candidates and their scored partners are all unmatched at
        // round start, so "mate[x] != x by now" (the replicated apply
        // guard) is exactly "x was matched earlier in this loop".
        let mut newly: HashSet<usize> = HashSet::new();
        let mut matched_this_round = 0usize;
        for (rec, &(win_score, win_rank, partner)) in records.iter().zip(&winners) {
            let u = rec.0;
            if win_rank == usize::MAX || win_score <= 0.0 {
                continue;
            }
            if newly.contains(&u) || newly.contains(&partner) || u == partner {
                continue;
            }
            newly.insert(u);
            newly.insert(partner);
            if my_range.contains(&u) {
                mate[u - start] = partner;
            }
            if my_range.contains(&partner) {
                mate[partner - start] = u;
            }
            num_pairs += 1;
            matched_this_round += 1;
        }
        if matched_this_round == 0 {
            break;
        }
    }

    DistMatching { mate, num_pairs }
}

/// Mirror of `best_owned_partner` over owner-computes storage. The
/// caller supplies `u`'s incidence as an iterator of *local* net
/// indices (for a global candidate: its net-id list filtered through
/// [`DistHypergraph::local_net_index`] — absent nets contain none of
/// this rank's vertices and contribute nothing). Stub pin lists hold
/// this rank's pins in net order, so accumulation and first-touch
/// order match the replicated loop restricted to the owned range
/// exactly. `mate`, `taken` and `scores` are indexed by owned offset.
#[allow(clippy::too_many_arguments)]
fn dist_best_owned_partner(
    d: &DistLevel,
    u: usize,
    u_fixed: i64,
    net_iter: impl Iterator<Item = usize>,
    mate: &[usize],
    taken: &[bool],
    cfg: &CoarseningConfig,
    scores: &mut [f64],
    touched: &mut Vec<usize>,
) -> Option<(usize, f64)> {
    let my_range = d.dh.my_range();
    let start = my_range.start;
    touched.clear();
    for lj in net_iter {
        let size = d.dh.net_size(lj);
        if size < 2 || size > cfg.max_net_size_for_matching {
            continue;
        }
        let contrib = if cfg.scaled_ipm {
            d.dh.net_cost(lj) / (size - 1) as f64
        } else {
            d.dh.net_cost(lj)
        };
        if contrib <= 0.0 {
            continue;
        }
        for &w in d.dh.net_pins(lj) {
            if w == u || !my_range.contains(&w) {
                continue;
            }
            let off = w - start;
            if mate[off] != w || taken[off] {
                continue;
            }
            if scores[off] == 0.0 {
                touched.push(off);
            }
            scores[off] += contrib;
        }
    }
    let mut best: Option<(usize, f64)> = None;
    for &off in touched.iter() {
        let s = scores[off];
        scores[off] = 0.0;
        let w_fixed = d.fixed_i64(off);
        let compatible = u_fixed < 0 || w_fixed < 0 || u_fixed == w_fixed;
        if compatible && best.is_none_or(|(_, bs)| s > bs) {
            best = Some((start + off, s));
        }
    }
    best
}

/// Mirror of `par_local_ipm_matching` over owner-computes storage:
/// greedy rank-local matching. Both endpoints of every pair are owned,
/// so the only communication is the global pair count.
fn dist_local_ipm_matching(
    comm: &mut Comm,
    d: &DistLevel,
    cfg: &CoarseningConfig,
    rng: &mut StdRng,
) -> DistMatching {
    let my_range = d.dh.my_range();
    let start = my_range.start;
    let owned = my_range.len();
    let shared_draw: u64 = rng.gen();
    let mut my_rng = StdRng::seed_from_u64(
        shared_draw ^ (comm.rank() as u64).wrapping_mul(0x0BAD_CAFE_F00D_BEEF),
    );

    let mut mate: Vec<usize> = my_range.clone().collect();
    let mut scores = vec![0.0f64; owned];
    let mut touched: Vec<usize> = Vec::new();
    let taken = vec![false; owned];

    let mut order: Vec<usize> = my_range.clone().collect();
    order.shuffle(&mut my_rng);
    let mut local_pairs = 0usize;
    for &u in &order {
        if mate[u - start] != u {
            continue;
        }
        if let Some((w, _)) = dist_best_owned_partner(
            d,
            u,
            d.fixed_i64(u - start),
            d.dh.vertex_local_nets(u).iter().copied(),
            &mate,
            &taken,
            cfg,
            &mut scores,
            &mut touched,
        ) {
            mate[u - start] = w;
            mate[w - start] = u;
            local_pairs += 1;
        }
    }
    let num_pairs = comm.allreduce(local_pairs, |a, b| a + b);
    DistMatching { mate, num_pairs }
}

/// Deterministic shard rank for a coarse pin-set: every copy of an
/// identical pin-set lands on the same rank, which performs the
/// duplicate collapse for that set (FNV-1a over the pins).
fn pinset_shard(pins: &[usize], nranks: usize) -> usize {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &v in pins {
        hash ^= v as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash % nranks as u64) as usize
}

/// Values pulled once for a sorted, deduplicated id list; resolved by
/// binary search.
struct RemoteLookup {
    ids: Vec<usize>,
    vals: Vec<usize>,
}

impl RemoteLookup {
    fn get(&self, id: usize) -> usize {
        self.vals[self.ids.binary_search(&id).expect("id was pulled")]
    }
}

/// Fetches `owned_vals[offset]` from the owner of each remote id in
/// `ids` (collective — every rank must call, even with no ids). `ids`
/// must be sorted, deduplicated, and contain no locally owned vertex.
fn pull_remote(
    comm: &mut Comm,
    dist: &BlockDist,
    ids: Vec<usize>,
    owned_vals: &[usize],
) -> RemoteLookup {
    debug_assert!(ids.windows(2).all(|w| w[0] < w[1]));
    let exch = GhostExchange::build_for_ids(comm, dist, &ids);
    let vals = exch.pull(comm, owned_vals);
    RemoteLookup { ids, vals }
}

/// Distinct owner ranks of local net `lj`'s pins, ascending. Only
/// meaningful on the net's owner (which stores the full pin list).
fn pin_owner_ranks(dh: &DistHypergraph, lj: usize, owners: &mut Vec<usize>) {
    debug_assert!(dh.owns_net(lj));
    let vdist = dh.vertex_dist();
    owners.clear();
    owners.extend(dh.net_pins(lj).iter().map(|&w| vdist.owner(w)));
    owners.sort_unstable();
    owners.dedup();
}

/// Distributed contraction: builds the coarse level without any rank
/// materializing a replicated coarse hypergraph **or** a replicated
/// fine→coarse map. The coarse hypergraph equals the replicated
/// [`contract_threads`] output net-for-net:
///
/// 1. Representatives (`mate >= self`) take coarse ids in ascending
///    fine order; per-rank representative counts are prefix-summed so
///    the global numbering matches the replicated scan. Non-reps copy
///    their mate's id, pulling it from the mate's owner if remote.
/// 2. Per-coarse-vertex attributes (weight, size, fixed flag,
///    auxiliary loads) are routed to the coarse owner and accumulated
///    in ascending fine order — at most two contributions per coarse
///    vertex, the replicated add order.
/// 3. Each fine net's owner remaps, sorts and dedups its pins (ghost
///    pins through a one-shot f2c halo pull), drops sub-2-pin nets and
///    submits `(fine_id, cost, pins)` to the pin-set's shard rank.
/// 4. The shard collapses duplicates in ascending fine-net order — the
///    replicated fold — keyed by the group's first fine net; coarse net
///    ids are the positions of those keys in globally sorted order.
/// 5. Each surviving coarse net is routed owner-computes: the full pin
///    list to its owner rank, a stub (that rank's own pins, which form
///    one contiguous run of the sorted list) to every other pin-owning
///    rank.
fn dist_contract(
    comm: &mut Comm,
    d: &DistLevel,
    matching: &DistMatching,
) -> (DistLevel, Vec<usize>) {
    let dh = &d.dh;
    let my_range = dh.my_range();
    let start = my_range.start;
    let owned = my_range.len();
    let nranks = comm.size();
    let vdist = dh.vertex_dist();

    // --- Global coarse numbering. ---
    let my_reps = (0..owned).filter(|&i| matching.mate[i] >= start + i).count();
    let rep_counts = comm.allgather(my_reps);
    let nc: usize = rep_counts.iter().sum();
    let my_base: usize = rep_counts[..comm.rank()].iter().sum();
    let mut f2c = vec![usize::MAX; owned];
    let mut next = my_base;
    for i in 0..owned {
        if matching.mate[i] >= start + i {
            f2c[i] = next;
            next += 1;
        }
    }
    let mut remote_mates: Vec<usize> = (0..owned)
        .filter(|&i| matching.mate[i] < start + i && !my_range.contains(&matching.mate[i]))
        .map(|i| matching.mate[i])
        .collect();
    remote_mates.sort_unstable();
    remote_mates.dedup();
    // A non-rep's mate is a representative at its owner, so its coarse
    // id is already assigned there.
    let mate_lookup = pull_remote(comm, &vdist, remote_mates, &f2c);
    for i in 0..owned {
        let m = matching.mate[i];
        if m < start + i {
            f2c[i] = if my_range.contains(&m) { f2c[m - start] } else { mate_lookup.get(m) };
        }
    }

    // --- Coarse per-vertex attributes, accumulated at the coarse
    // owner in ascending fine order. ---
    let cdist = BlockDist::new(nc, nranks);
    let crange = cdist.range(comm.rank());
    let vwgt = dh.owned_weights();
    // (coarse id, fine id, weight, size, fixed-as-i64, aux values).
    type CoarseContribution = (usize, usize, f64, f64, i64, Vec<f64>);
    let mut contrib: Vec<Vec<CoarseContribution>> = (0..nranks).map(|_| Vec::new()).collect();
    for i in 0..owned {
        let c = f2c[i];
        let aux_vals: Vec<f64> = d.aux.iter().map(|col| col[i]).collect();
        contrib[cdist.owner(c)].push((c, start + i, vwgt[i], d.vsize[i], d.fixed_i64(i), aux_vals));
    }
    let mut incoming: Vec<CoarseContribution> =
        comm.alltoallv(contrib).into_iter().flatten().collect();
    incoming.sort_unstable_by_key(|r| r.1);
    let cown = crange.len();
    let mut cw = vec![0.0f64; cown];
    let mut cs = vec![0.0f64; cown];
    let mut cfixed: Vec<Option<PartId>> = vec![None; cown];
    let mut caux: Vec<Vec<f64>> = (0..d.aux.len()).map(|_| vec![0.0f64; cown]).collect();
    for (c, _v, w, s, fx, aux_vals) in incoming {
        let off = c - crange.start;
        cw[off] += w;
        cs[off] += s;
        if fx >= 0 {
            debug_assert!(cfixed[off].is_none_or(|q| q == fx as usize));
            cfixed[off] = Some(fx as PartId);
        }
        for (col, &a) in aux_vals.iter().enumerate() {
            caux[col][off] += a;
        }
    }

    // --- Net remap and shard submission. ---
    let exch = GhostExchange::build(comm, dh);
    let ghost_f2c = exch.pull(comm, &f2c);
    let mut outgoing: Vec<Vec<(usize, f64, Vec<usize>)>> =
        (0..nranks).map(|_| Vec::new()).collect();
    let mut pins: Vec<usize> = Vec::new();
    for lj in 0..dh.num_local_nets() {
        if !dh.owns_net(lj) {
            continue;
        }
        pins.clear();
        for &v in dh.net_pins(lj) {
            let s = dh.slot(v).expect("pin has a slot");
            pins.push(if s < owned { f2c[s] } else { ghost_f2c[s - owned] });
        }
        pins.sort_unstable();
        pins.dedup();
        if pins.len() < 2 {
            continue;
        }
        let shard = pinset_shard(&pins, nranks);
        outgoing[shard].push((dh.net_global_id(lj), dh.net_cost(lj), pins.clone()));
    }
    let mut submitted: Vec<(usize, f64, Vec<usize>)> =
        comm.alltoallv(outgoing).into_iter().flatten().collect();
    // Ascending fine-net order = the replicated collapse order.
    submitted.sort_unstable_by_key(|&(j, _, _)| j);

    // Collapse duplicates; a group is keyed by its first fine net id.
    let mut dedup: HashMap<Vec<usize>, usize> = HashMap::new();
    let mut groups: Vec<(usize, f64, Vec<usize>)> = Vec::new();
    for (j, cost, net) in submitted {
        match dedup.get(&net) {
            Some(&idx) => groups[idx].1 += cost,
            None => {
                dedup.insert(net.clone(), groups.len());
                groups.push((j, cost, net));
            }
        }
    }

    // Global coarse net ids: the replicated construction appends a
    // group the first time its pin-set occurs while scanning fine nets
    // in order, so sorting the first-occurrence keys reproduces its ids.
    let my_keys: Vec<usize> = groups.iter().map(|g| g.0).collect();
    let mut all_keys: Vec<usize> = comm.allgather(my_keys).into_iter().flatten().collect();
    all_keys.sort_unstable();
    let num_coarse_nets = all_keys.len();

    // --- Owner-computes share routing. The pin list is sorted, so
    // each rank's pins form one contiguous run. ---
    let mut routed: Vec<Vec<NetShare>> = (0..nranks).map(|_| Vec::new()).collect();
    let mut runs: Vec<(usize, usize, usize)> = Vec::new();
    for (min_j, cost, net) in groups {
        let cid = all_keys.binary_search(&min_j).expect("group key is present");
        runs.clear();
        let mut s = 0usize;
        while s < net.len() {
            let r = cdist.owner(net[s]);
            let mut e = s + 1;
            while e < net.len() && cdist.owner(net[e]) == r {
                e += 1;
            }
            runs.push((r, s, e));
            s = e;
        }
        // Rotate ownership over the distinct pin-holding ranks rather
        // than pin positions: coarsening concentrates pins on a few
        // high-degree coarse vertices, and a position-based rotation
        // would hand those ranks most full pin-list copies on top of
        // their already-large stub shares.
        let owner = runs[cid % runs.len()].0;
        let global_size = net.len();
        for &(r, s, e) in &runs {
            let share_pins = if r == owner { net.clone() } else { net[s..e].to_vec() };
            routed[r].push(NetShare { gid: cid, cost, global_size, owner, pins: share_pins });
        }
    }
    let mut shares: Vec<NetShare> = comm.alltoallv(routed).into_iter().flatten().collect();
    shares.sort_unstable_by_key(|s| s.gid);
    let dh_coarse =
        DistHypergraph::from_local_nets(nc, num_coarse_nets, comm.rank(), nranks, shares, cw);
    let coarse = DistLevel { dh: dh_coarse, aux: caux, vsize: cs, fixed: cfixed };
    (coarse, f2c)
}

/// Mirror of `MoveScratch` (its fields are private to `refine`).
struct DistMoveScratch {
    mark: Vec<u64>,
    present: Vec<f64>,
    cands: Vec<usize>,
    stamp: u64,
}

impl DistMoveScratch {
    fn new(k: usize) -> Self {
        DistMoveScratch { mark: vec![0; k], present: vec![0.0; k], cands: Vec::new(), stamp: 0 }
    }
}

/// Replicated part-weight vectors from distributed per-vertex data
/// (collective). The scalar column folds on the global `DEFAULT_CHUNK`
/// grid — bitwise identical to `PartitionState::new`'s partial-then-
/// fold — and each auxiliary column folds serially, matching the gated
/// serial accumulation of `PartitionState::new_threads`.
fn fold_part_weights(
    comm: &mut Comm,
    level: &DistLevel,
    k: usize,
    part: &[PartId],
) -> (Vec<f64>, Vec<f64>) {
    let start = level.dh.my_range().start;
    let vwgt = level.dh.owned_weights();
    let weights =
        comm.fold_blocked(k, start, part.len(), Some(parallel::DEFAULT_CHUNK), |v, acc| {
            acc[part[v - start]] += vwgt[v - start];
        });
    let mut aux_weights = Vec::new();
    for col in &level.aux {
        let col_w = comm.fold_blocked(k, start, part.len(), None, |v, acc| {
            acc[part[v - start]] += col[v - start];
        });
        aux_weights.extend(col_w);
    }
    (weights, aux_weights)
}

/// Partition state over owner-computes storage. Sigma rows exist for
/// every locally visible net and always hold the net's **global** part
/// distribution (owned nets count their ghost pins through the halo
/// cache; stub rows are seeded by the owner and patched by per-move
/// delta events). The O(k) part-weight vectors are replicated and kept
/// in bitwise lockstep on every rank; the partition vector itself is
/// owned-block only.
struct DistState<'a> {
    level: &'a DistLevel,
    k: usize,
    /// `sigma[lj*k + p]` = pins of local net `lj` in part `p`
    /// (global count, including pins this rank does not store).
    sigma: Vec<u32>,
    weights: Vec<f64>,
    /// Per-part auxiliary loads, `aux_weights[(c-1)*k + p]`; empty when
    /// the level carries no auxiliary columns.
    aux_weights: Vec<f64>,
    /// Parts of this rank's owned vertices (indexed by owned offset).
    part: Vec<PartId>,
}

impl<'a> DistState<'a> {
    /// Builds the shared state (collective): first halo pull seeds the
    /// ghost-part cache, owners compute exact rows for their nets and
    /// send each stub holder its copy, and the part weights fold in the
    /// replicated order.
    fn new(
        comm: &mut Comm,
        halo: &mut GhostHalo<PartId>,
        level: &'a DistLevel,
        k: usize,
        part: Vec<PartId>,
    ) -> Self {
        let dh = &level.dh;
        let owned = dh.my_range().len();
        assert_eq!(part.len(), owned);
        let ghost_part: Vec<PartId> = halo.sync(comm, &part).to_vec();
        let mut sigma = vec![0u32; dh.num_local_nets() * k];
        let mut row_msgs: Vec<Vec<(usize, Vec<u32>)>> =
            (0..comm.size()).map(|_| Vec::new()).collect();
        let mut owners: Vec<usize> = Vec::new();
        for lj in 0..dh.num_local_nets() {
            if !dh.owns_net(lj) {
                continue;
            }
            for &v in dh.net_pins(lj) {
                let s = dh.slot(v).expect("pin has a slot");
                let p = if s < owned { part[s] } else { ghost_part[s - owned] };
                sigma[lj * k + p] += 1;
            }
            pin_owner_ranks(dh, lj, &mut owners);
            let gid = dh.net_global_id(lj);
            for &r in owners.iter() {
                if r != dh.rank() {
                    row_msgs[r].push((gid, sigma[lj * k..(lj + 1) * k].to_vec()));
                }
            }
        }
        for batch in comm.alltoallv(row_msgs) {
            for (gid, row) in batch {
                let lj = dh.local_net_index(gid).expect("sigma row for a non-local net");
                debug_assert!(!dh.owns_net(lj));
                sigma[lj * k..(lj + 1) * k].copy_from_slice(&row);
            }
        }
        let (weights, aux_weights) = fold_part_weights(comm, level, k, &part);
        DistState { level, k, sigma, weights, aux_weights, part }
    }

    /// A private working copy for proposal generation (collective: the
    /// replicated reference rebuilds its private state from the part
    /// vector each pass, so the weights must be *fresh folds*, not
    /// copies of the incrementally maintained shared vectors — the two
    /// can differ in the last ulp).
    fn private_copy(&self, comm: &mut Comm) -> DistState<'a> {
        let (weights, aux_weights) = fold_part_weights(comm, self.level, self.k, &self.part);
        DistState {
            level: self.level,
            k: self.k,
            sigma: self.sigma.clone(),
            weights,
            aux_weights,
            part: self.part.clone(),
        }
    }

    #[inline]
    fn sigma(&self, lj: usize, p: usize) -> u32 {
        self.sigma[lj * self.k + p]
    }

    #[inline]
    fn my_start(&self) -> usize {
        self.level.dh.my_range().start
    }

    /// Applies a move of owned vertex `v` to `q`, updating every local
    /// sigma row (an owned vertex's incidence list is complete), the
    /// replicated weight vectors, and the owned part slice. Returns the
    /// source part.
    fn apply_owned(&mut self, v: usize, q: PartId) -> PartId {
        let off = v - self.my_start();
        let p = self.part[off];
        debug_assert_ne!(p, q);
        for &lj in self.level.dh.vertex_local_nets(v) {
            self.sigma[lj * self.k + p] -= 1;
            self.sigma[lj * self.k + q] += 1;
        }
        let w = self.level.dh.owned_weights()[off];
        self.weights[p] -= w;
        self.weights[q] += w;
        for (i, col) in self.level.aux.iter().enumerate() {
            self.aux_weights[i * self.k + p] -= col[off];
            self.aux_weights[i * self.k + q] += col[off];
        }
        self.part[off] = q;
        p
    }

    /// Applies the replicated (O(k)) share of a remote vertex's move:
    /// the weight vectors shift by the payload values in the same
    /// arithmetic order as [`DistState::apply_owned`] on the owner, so
    /// the vectors stay bitwise identical across ranks. Sigma rows are
    /// reconciled separately by [`sync_moves`].
    fn apply_remote(&mut self, from: PartId, to: PartId, w: f64, aux_vals: &[f64]) {
        self.weights[from] -= w;
        self.weights[to] += w;
        for (i, &a) in aux_vals.iter().enumerate() {
            self.aux_weights[i * self.k + from] -= a;
            self.aux_weights[i * self.k + to] += a;
        }
    }

    /// Mirror of `PartitionState::aux_fits` for owned offset `off`.
    #[inline]
    fn aux_fits(&self, off: usize, q: PartId, targets: &PartTargets) -> bool {
        for (i, a) in targets.aux.iter().enumerate() {
            if self.aux_weights[i * self.k + q] + self.level.aux[i][off] > a.cap(q) {
                return false;
            }
        }
        true
    }

    /// Exact gain of moving owned vertex `v` to `q` (an owned vertex's
    /// nets are all local and their rows are globally exact, so this
    /// equals `PartitionState::gain`).
    fn gain(&self, v: usize, q: PartId) -> f64 {
        let p = self.part[v - self.my_start()];
        if p == q {
            return 0.0;
        }
        let mut g = 0.0;
        for &lj in self.level.dh.vertex_local_nets(v) {
            let c = self.level.dh.net_cost(lj);
            if self.sigma(lj, p) == 1 {
                g += c;
            }
            if self.sigma(lj, q) == 0 {
                g -= c;
            }
        }
        g
    }

    /// Mirror of `PartitionState::best_move` for an owned vertex.
    fn best_move(
        &self,
        v: usize,
        targets: &PartTargets,
        scratch: &mut DistMoveScratch,
    ) -> Option<(PartId, f64)> {
        let off = v - self.my_start();
        let p = self.part[off];
        scratch.stamp += 1;
        let stamp = scratch.stamp;

        let mut base = 0.0;
        let mut total = 0.0;
        for &lj in self.level.dh.vertex_local_nets(v) {
            let c = self.level.dh.net_cost(lj);
            total += c;
            if self.sigma(lj, p) == 1 {
                base += c;
            }
            for q in 0..self.k {
                if q != p && self.sigma(lj, q) > 0 {
                    if scratch.mark[q] != stamp {
                        scratch.mark[q] = stamp;
                        scratch.present[q] = 0.0;
                        scratch.cands.push(q);
                    }
                    scratch.present[q] += c;
                }
            }
        }

        let w = self.level.dh.owned_weights()[off];
        let mut best: Option<(PartId, f64)> = None;
        for &q in &scratch.cands {
            if self.weights[q] + w > targets.cap(q) || !self.aux_fits(off, q, targets) {
                continue;
            }
            let gain = base - (total - scratch.present[q]);
            match best {
                Some((bq, bg)) => {
                    if gain > bg + 1e-12 || (gain > bg - 1e-12 && self.weights[q] < self.weights[bq])
                    {
                        best = Some((q, gain));
                    }
                }
                None => best = Some((q, gain)),
            }
        }
        scratch.cands.clear();
        best
    }

    /// Owned boundary vertices, ascending — the replicated boundary
    /// list restricted to the owned range. Every net of an owned vertex
    /// is locally visible with a globally exact sigma row, and a stub's
    /// pin list is exactly this rank's pins, so no boundary vertex is
    /// missed and none is spurious.
    fn owned_boundary(&self) -> Vec<usize> {
        let range = self.level.dh.my_range();
        let mut flag = vec![false; range.len()];
        for lj in 0..self.level.dh.num_local_nets() {
            let cut = (0..self.k).filter(|&p| self.sigma(lj, p) > 0).count() > 1;
            if cut {
                for &v in self.level.dh.net_pins(lj) {
                    if range.contains(&v) {
                        flag[v - range.start] = true;
                    }
                }
            }
        }
        range.clone().filter(|&v| flag[v - range.start]).collect()
    }
}

/// Reconciles sigma rows after a batch of committed moves (collective).
///
/// Three disjoint row families update:
///
/// * **Owned-net rows for owned movers** — already updated inside
///   [`DistState::apply_owned`] (an owned vertex's incidence list is
///   complete), nothing to do here.
/// * **Owned-net rows for ghost movers** — the incremental halo push
///   delivers `(slot, old, new)` triples for exactly the ghosts whose
///   part changed; each triple patches the rows of the owned nets that
///   ghost pins.
/// * **Stub rows** — patched by delta events `(net gid, from, to)`
///   emitted by the net's *owner* (exactly one sender per (net, move)):
///   for its own movers directly, for ghost movers on receipt of the
///   halo triple. The mover's owner rank is skipped — its own rows are
///   already exact.
fn sync_moves(
    comm: &mut Comm,
    state: &mut DistState<'_>,
    halo: &mut GhostHalo<PartId>,
    own_moves: &[(usize, PartId, PartId)],
) {
    let level = state.level;
    let dh = &level.dh;
    let k = state.k;
    let me = dh.rank();
    let vdist = dh.vertex_dist();
    let mut outgoing: Vec<Vec<(usize, u32, u32)>> = (0..comm.size()).map(|_| Vec::new()).collect();
    let mut owners: Vec<usize> = Vec::new();

    let triples = halo.sync_updates(comm, &state.part);
    for (slot, old, new) in triples {
        let v = dh.ghosts()[slot];
        // A ghost's local incidence list holds exactly the owned nets
        // that pin it, so these are all owned-net rows.
        for &lj in dh.vertex_local_nets(v) {
            state.sigma[lj * k + old] -= 1;
            state.sigma[lj * k + new] += 1;
            stub_events(dh, lj, old, new, vdist.owner(v), me, &mut outgoing, &mut owners);
        }
    }
    for &(v, from, to) in own_moves {
        for &lj in dh.vertex_local_nets(v) {
            if dh.owns_net(lj) {
                stub_events(dh, lj, from, to, me, me, &mut outgoing, &mut owners);
            }
        }
    }
    for batch in comm.alltoallv(outgoing) {
        for (gid, from, to) in batch {
            let lj = dh.local_net_index(gid).expect("stub event for a non-local net");
            debug_assert!(!dh.owns_net(lj));
            state.sigma[lj * k + from as usize] -= 1;
            state.sigma[lj * k + to as usize] += 1;
        }
    }
}

/// Queues one stub delta event per remote pin-owning rank of owned net
/// `lj`, skipping the mover's owner (`skip`) whose rows are already
/// exact.
#[allow(clippy::too_many_arguments)]
fn stub_events(
    dh: &DistHypergraph,
    lj: usize,
    from: PartId,
    to: PartId,
    skip: usize,
    me: usize,
    outgoing: &mut [Vec<(usize, u32, u32)>],
    owners: &mut Vec<usize>,
) {
    pin_owner_ranks(dh, lj, owners);
    let gid = dh.net_global_id(lj);
    for &r in owners.iter() {
        if r != me && r != skip {
            outgoing[r].push((gid, from as u32, to as u32));
        }
    }
}

/// Applies one globally agreed move on every rank (collective): the
/// owner updates its slice and marks the vertex dirty; everyone else
/// applies the O(k) weight shift; sigma rows reconcile through the
/// halo push either way.
#[allow(clippy::too_many_arguments)]
fn apply_global(
    comm: &mut Comm,
    state: &mut DistState<'_>,
    halo: &mut GhostHalo<PartId>,
    v: usize,
    from: PartId,
    to: PartId,
    w: f64,
    aux_vals: &[f64],
) {
    let range = state.level.dh.my_range();
    if range.contains(&v) {
        let off = v - range.start;
        let actual = state.apply_owned(v, to);
        debug_assert_eq!(actual, from);
        halo.mark_dirty(off);
        sync_moves(comm, state, halo, &[(v, from, to)]);
    } else {
        state.apply_remote(from, to, w, aux_vals);
        sync_moves(comm, state, halo, &[]);
    }
}

fn total_violation(weights: &[f64], targets: &PartTargets) -> f64 {
    weights.iter().enumerate().map(|(p, &w)| (w - targets.cap(p)).max(0.0)).sum()
}

/// Distributed mirror of `refine::rebalance`: repeatedly move the best
/// candidate out of the most-overweight part. Candidates are scanned
/// owner-blocked (ascending vertex id across ranks, matching the
/// replicated scan order) and the global winner is the allreduce
/// maximum with the replicated tie-break (higher gain, then lower
/// vertex id).
fn dist_rebalance(
    comm: &mut Comm,
    state: &mut DistState<'_>,
    halo: &mut GhostHalo<PartId>,
    targets: &PartTargets,
    scratch: &mut DistMoveScratch,
) {
    dlb_trace::count(dlb_trace::Counter::RebalanceInvocations, 1);
    let k = state.k;
    let range = state.level.dh.my_range();
    let start = range.start;
    let max_moves = 2 * state.level.dh.num_vertices() + 16;
    for _ in 0..max_moves {
        let violation_before = total_violation(&state.weights, targets);
        // Most-overweight part by absolute overshoot (replicated
        // weights: identical choice on every rank).
        let mut over: Option<(usize, f64)> = None;
        for p in 0..k {
            let excess = state.weights[p] - targets.cap(p);
            if excess > 1e-9 && over.is_none_or(|(_, e)| excess > e) {
                over = Some((p, excess));
            }
        }
        let Some((p, _)) = over else { return };

        // Best owned candidate to evacuate from `p`.
        let mut best: Option<(usize, PartId, f64)> = None; // (v, to, gain)
        for off in 0..range.len() {
            if state.part[off] != p || state.level.fixed[off].is_some() {
                continue;
            }
            let v = start + off;
            let (q, g) = match state.best_move(v, targets, scratch) {
                Some((q, g)) => (q, g),
                None => {
                    // No underweight destination admits the vertex:
                    // fall back to the minimum relative spare capacity,
                    // like the replicated rebalance.
                    let w = state.level.dh.owned_weights()[off];
                    let mut fq: Option<(PartId, f64)> = None;
                    for q in 0..k {
                        if q == p {
                            continue;
                        }
                        let rel = (state.weights[q] + w) / targets.target[q].max(1e-12);
                        if fq.is_none_or(|(_, r)| rel < r) {
                            fq = Some((q, rel));
                        }
                    }
                    let Some((q, _)) = fq else { continue };
                    (q, state.gain(v, q))
                }
            };
            // Strict improvement keeps the earliest (lowest-id) vertex,
            // matching the replicated ascending scan.
            if best.is_none_or(|(_, _, bg)| g > bg) {
                best = Some((v, q, g));
            }
        }
        let entry: (f64, usize, usize, f64, Vec<f64>) = match best {
            Some((v, q, g)) => {
                let off = v - start;
                let aux_vals: Vec<f64> = state.level.aux.iter().map(|col| col[off]).collect();
                (g, v, q, state.level.dh.owned_weights()[off], aux_vals)
            }
            None => (f64::NEG_INFINITY, usize::MAX, usize::MAX, 0.0, Vec::new()),
        };
        let (_g, v, q, w, aux_vals) = comm.allreduce_vec(vec![entry], |a, b| {
            match a.0.total_cmp(&b.0) {
                std::cmp::Ordering::Greater => a.clone(),
                std::cmp::Ordering::Less => b.clone(),
                std::cmp::Ordering::Equal => {
                    if a.1 <= b.1 {
                        a.clone()
                    } else {
                        b.clone()
                    }
                }
            }
        })
        .pop()
        .expect("allreduce keeps the element");
        if v == usize::MAX {
            return;
        }
        apply_global(comm, state, halo, v, p, q, w, &aux_vals);
        if total_violation(&state.weights, targets) >= violation_before - 1e-12 {
            // No progress: undo and stop, like the replicated rebalance.
            apply_global(comm, state, halo, v, q, p, w, &aux_vals);
            return;
        }
    }
}

/// One proposed move: (vertex, from, to, weight, auxiliary loads). The
/// payload lets non-owner ranks shift the replicated weight vectors
/// without holding the mover's per-vertex data.
type MoveProp = (usize, PartId, PartId, f64, Vec<f64>);

/// One distributed FM pass (collective). Mirrors `par_pass`: each rank
/// proposes for its owned boundary on a private copy, proposals are
/// all-gathered, and each batch is revalidated *by its owner rank*
/// against the exact evolving state; the verdict bitmap is broadcast
/// and every rank applies the surviving moves' O(k) weight shifts.
/// Sigma rows and the ghost-part cache reconcile after every batch via
/// the incremental (dirty-subset) halo push.
fn dist_pass(
    comm: &mut Comm,
    state: &mut DistState<'_>,
    halo: &mut GhostHalo<PartId>,
    targets: &PartTargets,
    rng: &mut StdRng,
) -> usize {
    let start = state.my_start();
    let shared_draw: u64 = rng.gen();
    let mut my_rng = StdRng::seed_from_u64(
        shared_draw ^ (comm.rank() as u64).wrapping_mul(0xC0FF_EE00_1234_5678),
    );

    let my_moves: Vec<MoveProp> = {
        let mut private = state.private_copy(comm);
        let mut scratch = DistMoveScratch::new(targets.k());
        let mut boundary: Vec<usize> = private
            .owned_boundary()
            .into_iter()
            .filter(|&v| state.level.fixed[v - start].is_none())
            .collect();
        boundary.shuffle(&mut my_rng);
        let mut moves = Vec::new();
        for v in boundary {
            if let Some((to, gain)) = private.best_move(v, targets, &mut scratch) {
                let p = private.part[v - start];
                if accepts_proposal(gain, private.weights[p], targets.target[p]) {
                    private.apply_owned(v, to);
                    let aux_vals: Vec<f64> =
                        state.level.aux.iter().map(|col| col[v - start]).collect();
                    moves.push((v, p, to, state.level.dh.owned_weights()[v - start], aux_vals));
                }
            }
        }
        moves
    };

    let all_moves: Vec<Vec<MoveProp>> = comm.allgather(my_moves);
    let mut applied = 0usize;
    for (r, batch) in all_moves.iter().enumerate() {
        let mut own_applied: Vec<(usize, PartId, PartId)> = Vec::new();
        let verdicts: Vec<bool> = if comm.rank() == r {
            // Decide sequentially against the exact evolving state —
            // every vertex in the batch is owned here, so gains are
            // exact and `from == part[v]` (one proposal per vertex).
            let mut v_out = Vec::with_capacity(batch.len());
            for &(v, from, to, w, ref aux_vals) in batch {
                let _ = aux_vals;
                let off = v - start;
                let ok = state.level.fixed[off].is_none()
                    && state.part[off] != to
                    && state.weights[to] + w <= targets.cap(to)
                    && state.aux_fits(off, to, targets)
                    && {
                        let gain = state.gain(v, to);
                        accepts_revalidated(gain, state.weights[state.part[off]], state.weights[to], w)
                    };
                if ok {
                    debug_assert_eq!(state.part[off], from);
                    state.apply_owned(v, to);
                    halo.mark_dirty(off);
                    own_applied.push((v, from, to));
                }
                v_out.push(ok);
            }
            v_out
        } else {
            vec![false; batch.len()]
        };
        let verdicts = comm.broadcast(r, verdicts);
        if comm.rank() != r {
            for (ok, &(_, from, to, w, ref aux_vals)) in verdicts.iter().zip(batch) {
                if *ok {
                    state.apply_remote(from, to, w, aux_vals);
                }
            }
        }
        applied += verdicts.iter().filter(|&&ok| ok).count();
        // Reconcile after *every* batch so batch r+1 is decided against
        // fully synchronized sigma rows.
        sync_moves(comm, state, halo, &own_applied);
    }
    applied
}

/// Distributed refinement over an owner-computes level (collective).
/// `part_owned` is this rank's owned partition slice; it is refined in
/// place. Note: the auxiliary-feasibility `greedy_repair` step of the
/// replicated path has no distributed mirror — multi-constraint runs
/// must stay on the replicated driver (the CLI rejects `--constraints`
/// together with `--distributed`).
fn dist_refine(
    comm: &mut Comm,
    level: &DistLevel,
    targets: &PartTargets,
    part_owned: &mut Vec<PartId>,
    cfg: &RefinementConfig,
    rng: &mut StdRng,
) {
    let k = targets.k();
    if k < 2 || level.dh.num_vertices() == 0 {
        return;
    }
    let mut halo = GhostHalo::new(GhostExchange::build(comm, &level.dh), level.dh.my_range().len());
    let mut state = DistState::new(comm, &mut halo, level, k, std::mem::take(part_owned));
    let mut scratch = DistMoveScratch::new(k);
    dist_rebalance(comm, &mut state, &mut halo, targets, &mut scratch);
    for _ in 0..cfg.max_passes {
        let moved = dist_pass(comm, &mut state, &mut halo, targets, rng);
        if moved == 0 {
            break;
        }
    }
    *part_owned = state.part;
}

enum Level {
    Repl(CoarseLevel),
    Dist(DistLevel, Vec<usize>),
}

/// Borrowed view of the current coarsest hypergraph.
enum View<'a> {
    Repl(&'a Hypergraph, &'a FixedAssignment),
    Dist(&'a DistLevel),
}

impl View<'_> {
    fn num_vertices(&self) -> usize {
        match self {
            View::Repl(h, _) => h.num_vertices(),
            View::Dist(d) => d.dh.num_vertices(),
        }
    }
}

fn current_view<'a>(
    h: &'a Hypergraph,
    fixed: &'a FixedAssignment,
    finest_dist: &'a Option<DistLevel>,
    levels: &'a [Level],
    gathered: &'a Option<(Hypergraph, FixedAssignment)>,
) -> View<'a> {
    if let Some((gh, gf)) = gathered {
        return View::Repl(gh, gf);
    }
    match levels.last() {
        Some(Level::Repl(l)) => View::Repl(&l.coarse, &l.coarse_fixed),
        Some(Level::Dist(d, _)) => View::Dist(d),
        None => match finest_dist {
            Some(d) => View::Dist(d),
            None => View::Repl(h, fixed),
        },
    }
}

/// The partition vector during uncoarsening: replicated (`Full`) above
/// the gather point, owned-block only (`Owned`) on distributed levels.
/// The level stack is always `[Dist.., Repl..]` bottom-up — a gather
/// never un-happens — so uncoarsening (walked top-down) converts
/// `Full → Owned` exactly once, at the first distributed level.
enum PartRep {
    Full(Vec<PartId>),
    Owned(Vec<PartId>),
}

/// Projects an owned coarse partition slice through an owned
/// fine→coarse map (collective): coarse parts of remotely owned coarse
/// vertices are fetched with a one-shot pull. `PartId` rides the
/// `usize` pull used for f2c ids.
fn project_to_fine(
    comm: &mut Comm,
    cdist: &BlockDist,
    coarse_owned: &[PartId],
    f2c_owned: &[usize],
) -> Vec<PartId> {
    let crange = cdist.range(comm.rank());
    let mut remote: Vec<usize> =
        f2c_owned.iter().copied().filter(|c| !crange.contains(c)).collect();
    remote.sort_unstable();
    remote.dedup();
    let lookup = pull_remote(comm, cdist, remote, coarse_owned);
    f2c_owned
        .iter()
        .map(|&c| {
            if crange.contains(&c) {
                coarse_owned[c - crange.start]
            } else {
                lookup.get(c)
            }
        })
        .collect()
}

/// Distributed mirror of `record_committed_moves`: each rank diffs only
/// its owned slice, so the global count is an allreduce sum
/// (collective whenever a trace session is active anywhere in the
/// process — gated on `dlb_trace::session_active()`, not the per-thread
/// `enabled()`, so every rank participates or none does).
fn record_committed_moves_owned(
    comm: &mut Comm,
    span: &dlb_trace::SpanGuard,
    before: Option<&[PartId]>,
    after: &[PartId],
) {
    let Some(before) = before else { return };
    let local = before.iter().zip(after).filter(|(a, b)| a != b).count() as u64;
    let moved = comm.allreduce(local, |a, b| a + b);
    span.attr("moves_committed", moved);
    dlb_trace::count(dlb_trace::Counter::ParRefineMovesCommitted, moved);
}

/// One distributed multilevel V-cycle. Collective; every rank returns
/// the identical assignment — bit-identical to
/// [`super::driver::par_multilevel`] at the same rank count.
pub fn dist_multilevel(
    comm: &mut Comm,
    h: &Hypergraph,
    targets: &PartTargets,
    fixed: &FixedAssignment,
    cfg: &Config,
    rng: &mut StdRng,
) -> Vec<PartId> {
    dist_multilevel_stats(comm, h, targets, fixed, cfg, rng).0
}

/// [`dist_multilevel`] also reporting this rank's memory figures.
pub fn dist_multilevel_stats(
    comm: &mut Comm,
    h: &Hypergraph,
    targets: &PartTargets,
    fixed: &FixedAssignment,
    cfg: &Config,
    rng: &mut StdRng,
) -> (Vec<PartId>, DistStats) {
    let k = targets.k();
    let mut stats = DistStats::default();
    if k == 1 {
        return (vec![0; h.num_vertices()], stats);
    }
    if h.num_vertices() == 0 {
        return (Vec::new(), stats);
    }
    let threads = (parallel::resolve_threads(cfg.threads) / comm.size()).max(1);
    let mut scratch = RefineScratch::new();
    let coarse_target =
        (cfg.coarsening.coarse_to_factor * k).max(cfg.coarsening.min_coarse_vertices);
    let gather_threshold = cfg.dist.gather_threshold;
    let ml_span = dlb_trace::span!(
        "dist.multilevel",
        vertices = h.num_vertices(),
        k = k,
        ranks = comm.size(),
        gather_threshold = gather_threshold,
    );

    // --- Coarsening: distributed while large, replicated once small. ---
    let finest_dist: Option<DistLevel> = if h.num_vertices() > gather_threshold {
        let d = DistLevel::from_replicated(h, fixed, comm.rank(), comm.size());
        stats.observe(&d);
        Some(d)
    } else {
        None
    };
    let mut levels: Vec<Level> = Vec::new();
    // A gathered replica of the current coarsest level, once it shrank
    // under the threshold while still distributed.
    let mut gathered: Option<(Hypergraph, FixedAssignment)> = None;

    enum Step {
        Gather(Hypergraph, FixedAssignment, usize),
        Push(Level),
        Stop,
    }
    loop {
        let span = dlb_trace::span!("dist.coarsen.level", level = levels.len());
        let stats_before = comm.stats();
        let step = {
            let view = current_view(h, fixed, &finest_dist, &levels, &gathered);
            let before = view.num_vertices();
            if before <= coarse_target || levels.len() >= cfg.coarsening.max_levels {
                Step::Stop
            } else {
                match view {
                    View::Dist(d) if before <= gather_threshold => {
                        let (gh, gf) = d.gather(comm);
                        Step::Gather(gh, gf, before)
                    }
                    View::Dist(d) => {
                        let matching = dist_ipm_matching(comm, d, &cfg.coarsening, rng);
                        let after = matching.coarse_count(before);
                        if ((before - after) as f64) < before as f64 * cfg.coarsening.min_reduction
                        {
                            Step::Stop // unsuccessful coarsening (10% rule)
                        } else {
                            let (coarse, fine_to_coarse) = dist_contract(comm, d, &matching);
                            stats.observe(&coarse);
                            Step::Push(Level::Dist(coarse, fine_to_coarse))
                        }
                    }
                    View::Repl(ch, cf) => {
                        let matching = par_ipm_matching_threads(
                            comm, ch, cf, &cfg.coarsening, rng, threads,
                        );
                        let after = matching.coarse_count();
                        if ((before - after) as f64) < before as f64 * cfg.coarsening.min_reduction
                        {
                            Step::Stop
                        } else {
                            Step::Push(Level::Repl(contract_threads(ch, &matching, cf, threads)))
                        }
                    }
                }
            }
        };
        crate::par::driver::attr_comm_delta(&span, stats_before, comm.stats());
        match step {
            Step::Gather(gh, gf, n) => {
                span.attr("gathered", true);
                stats.gathered_vertices = n;
                gathered = Some((gh, gf));
            }
            Step::Push(level) => {
                dlb_trace::count(dlb_trace::Counter::CoarsenLevels, 1);
                gathered = None;
                levels.push(level);
            }
            Step::Stop => break,
        }
    }

    // The coarse solve needs a replicated coarsest; force the gather if
    // coarsening stopped early while still distributed.
    if gathered.is_none() {
        if let View::Dist(d) = current_view(h, fixed, &finest_dist, &levels, &gathered) {
            stats.gathered_vertices = d.dh.num_vertices();
            gathered = Some(d.gather(comm));
        }
    }

    // --- Coarse partitioning: identical to the replicated driver. ---
    let (coarsest_h, coarsest_fixed): (&Hypergraph, &FixedAssignment) =
        match current_view(h, fixed, &finest_dist, &levels, &gathered) {
            View::Repl(ch, cf) => (ch, cf),
            View::Dist(_) => unreachable!("coarsest was gathered above"),
        };
    let init_span = dlb_trace::span!("dist.initial", vertices = coarsest_h.num_vertices());
    let init_stats = comm.stats();
    dlb_trace::count(dlb_trace::Counter::CoarseVertices, coarsest_h.num_vertices() as u64);
    dlb_trace::count(dlb_trace::Counter::CoarseNets, coarsest_h.num_nets() as u64);
    dlb_trace::count(dlb_trace::Counter::CoarsePins, coarsest_h.num_pins() as u64);
    let shared_draw: u64 = rng.gen();
    let mut my_rng = StdRng::seed_from_u64(
        shared_draw ^ (comm.rank() as u64).wrapping_mul(0x1357_9BDF_2468_ACE0),
    );
    let mut my_part =
        initial_partition(coarsest_h, targets, coarsest_fixed, &cfg.initial, &mut my_rng);
    refine_threads(
        coarsest_h,
        targets,
        coarsest_fixed,
        &mut my_part,
        &cfg.refinement,
        &mut my_rng,
        threads,
        &mut scratch,
    );
    let my_score = score(coarsest_h, &my_part, targets);
    let (_, winner) = comm.allreduce((my_score, comm.rank()), |a, b| match a.0.total_cmp(&b.0) {
        std::cmp::Ordering::Less => a,
        std::cmp::Ordering::Greater => b,
        std::cmp::Ordering::Equal => {
            if a.1 <= b.1 {
                a
            } else {
                b
            }
        }
    });
    let mut part = PartRep::Full(comm.broadcast(winner, my_part));
    crate::par::driver::attr_comm_delta(&init_span, init_stats, comm.stats());
    drop(init_span);

    // --- Uncoarsening: refine in whichever form each level is held. ---
    // Levels are numbered with 0 = the original (finest) hypergraph. The
    // partition stays replicated through the gathered/replicated levels
    // and narrows to the owned slice at the first distributed level.
    for (i, level) in levels.iter().enumerate().rev() {
        let span = dlb_trace::span!("dist.refine.level", level = i + 1);
        let stats_before = comm.stats();
        match level {
            Level::Repl(l) => {
                let PartRep::Full(ref mut full) = part else {
                    unreachable!("replicated levels sit above the gather point")
                };
                let before_part = dlb_trace::enabled().then(|| full.clone());
                par_refine(comm, &l.coarse, targets, &l.coarse_fixed, full, &cfg.refinement, rng);
                crate::par::driver::record_committed_moves(&span, before_part.as_deref(), full);
                crate::par::driver::attr_comm_delta(&span, stats_before, comm.stats());
                drop(span);
                let mut finer = vec![0usize; l.fine_to_coarse.len()];
                for (v, &c) in l.fine_to_coarse.iter().enumerate() {
                    finer[v] = full[c];
                }
                part = PartRep::Full(finer);
            }
            Level::Dist(d, fine_to_coarse) => {
                let mut owned_part =
                    match std::mem::replace(&mut part, PartRep::Owned(Vec::new())) {
                        PartRep::Full(full) => full[d.dh.my_range()].to_vec(),
                        PartRep::Owned(p) => p,
                    };
                let before_part = dlb_trace::session_active().then(|| owned_part.clone());
                dist_refine(comm, d, targets, &mut owned_part, &cfg.refinement, rng);
                record_committed_moves_owned(comm, &span, before_part.as_deref(), &owned_part);
                crate::par::driver::attr_comm_delta(&span, stats_before, comm.stats());
                drop(span);
                // `d` is the *coarse* level of this projection step:
                // the finer level's owned f2c entries point into `d`'s
                // vertex blocks.
                part = PartRep::Owned(project_to_fine(
                    comm,
                    &d.dh.vertex_dist(),
                    &owned_part,
                    fine_to_coarse,
                ));
            }
        }
    }
    // Final refinement at the finest level.
    let full_part = {
        let span = dlb_trace::span!("dist.refine.level", level = 0usize);
        let stats_before = comm.stats();
        match &finest_dist {
            Some(d) => {
                let mut owned_part = match part {
                    PartRep::Full(full) => full[d.dh.my_range()].to_vec(),
                    PartRep::Owned(p) => p,
                };
                let before_part = dlb_trace::session_active().then(|| owned_part.clone());
                dist_refine(comm, d, targets, &mut owned_part, &cfg.refinement, rng);
                record_committed_moves_owned(comm, &span, before_part.as_deref(), &owned_part);
                crate::par::driver::attr_comm_delta(&span, stats_before, comm.stats());
                // The public contract returns the full assignment on
                // every rank.
                comm.allgather(owned_part).into_iter().flatten().collect()
            }
            None => {
                let PartRep::Full(mut full) = part else {
                    unreachable!("never distributed, so the partition stayed replicated")
                };
                let before_part = dlb_trace::enabled().then(|| full.clone());
                par_refine(comm, h, targets, fixed, &mut full, &cfg.refinement, rng);
                crate::par::driver::record_committed_moves(&span, before_part.as_deref(), &full);
                crate::par::driver::attr_comm_delta(&span, stats_before, comm.stats());
                full
            }
        }
    };
    drop(ml_span);
    (full_part, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_mpisim::run_spmd;

    fn dist_cfg(seed: u64, gather_threshold: usize) -> Config {
        let mut cfg = Config::seeded(seed);
        cfg.dist.distributed = true;
        cfg.dist.gather_threshold = gather_threshold;
        cfg
    }

    /// The distributed V-cycle must be bit-identical to the replicated
    /// driver at the same rank count, for every rank count.
    #[test]
    fn dist_multilevel_matches_replicated_driver() {
        let h = crate::tests::grid_hypergraph(16, 16);
        let targets = PartTargets::uniform(h.total_vertex_weight(), 4, 0.05);
        let fixed = FixedAssignment::free(h.num_vertices());
        for ranks in [1usize, 2, 4] {
            let cfg = dist_cfg(11, 60);
            let repl = run_spmd(ranks, |comm| {
                let mut rng = StdRng::seed_from_u64(2);
                super::super::driver::par_multilevel(comm, &h, &targets, &fixed, &cfg, &mut rng)
            });
            let dist = run_spmd(ranks, |comm| {
                let mut rng = StdRng::seed_from_u64(2);
                dist_multilevel(comm, &h, &targets, &fixed, &cfg, &mut rng)
            });
            assert_eq!(dist, repl, "ranks={ranks}");
            for r in &dist[1..] {
                assert_eq!(*r, dist[0], "ranks themselves disagree at {ranks}");
            }
        }
    }

    /// Same check on an irregular hypergraph with fixed vertices and a
    /// non-uniform (proportional) target, plus local IPM.
    #[test]
    fn dist_multilevel_matches_with_fixed_and_local_ipm() {
        let h = crate::tests::random_hypergraph(300, 600, 5, 29);
        let targets = PartTargets::proportional(h.total_vertex_weight(), &[2, 1], 0.06);
        let mut fixed = FixedAssignment::free(300);
        for v in (0..300).step_by(17) {
            fixed.fix(v, v % 2);
        }
        for local_ipm in [false, true] {
            for ranks in [1usize, 2, 3] {
                let mut cfg = dist_cfg(7, 100);
                cfg.coarsening.local_ipm = local_ipm;
                let repl = run_spmd(ranks, |comm| {
                    let mut rng = StdRng::seed_from_u64(5);
                    super::super::driver::par_multilevel(comm, &h, &targets, &fixed, &cfg, &mut rng)
                });
                let dist = run_spmd(ranks, |comm| {
                    let mut rng = StdRng::seed_from_u64(5);
                    dist_multilevel(comm, &h, &targets, &fixed, &cfg, &mut rng)
                });
                assert_eq!(dist, repl, "ranks={ranks} local_ipm={local_ipm}");
            }
        }
    }

    /// With the threshold above the input size the distributed driver
    /// degenerates to the replicated code path (no distributed levels).
    #[test]
    fn threshold_above_input_means_no_distribution() {
        let h = crate::tests::grid_hypergraph(10, 10);
        let targets = PartTargets::uniform(100.0, 2, 0.05);
        let fixed = FixedAssignment::free(100);
        let cfg = dist_cfg(3, 1_000);
        let results = run_spmd(2, |comm| {
            let mut rng = StdRng::seed_from_u64(9);
            dist_multilevel_stats(comm, &h, &targets, &fixed, &cfg, &mut rng)
        });
        for (_, stats) in &results {
            assert_eq!(stats.dist_levels, 0);
            assert_eq!(stats.gathered_vertices, 0);
        }
    }

    /// Pin storage must shrink with the rank count while the partition
    /// stays the same as the replicated driver's.
    #[test]
    fn local_pins_scale_down_with_ranks() {
        let h = crate::tests::grid_hypergraph(20, 20);
        let targets = PartTargets::uniform(h.total_vertex_weight(), 2, 0.05);
        let fixed = FixedAssignment::free(h.num_vertices());
        let cfg = dist_cfg(13, 80);
        let mut peak_by_ranks = Vec::new();
        for ranks in [1usize, 2, 4] {
            let results = run_spmd(ranks, |comm| {
                let mut rng = StdRng::seed_from_u64(4);
                dist_multilevel_stats(comm, &h, &targets, &fixed, &cfg, &mut rng)
            });
            let max_total =
                results.iter().map(|(_, s)| s.total_local_pins).max().unwrap();
            let max_owned =
                results.iter().map(|(_, s)| s.total_owned_pins).max().unwrap();
            assert!(results.iter().all(|(_, s)| s.dist_levels > 0));
            assert!(max_owned <= max_total);
            peak_by_ranks.push((max_total, max_owned));
        }
        // Owner-computes storage: both the stub-inclusive and the
        // canonical (owned) pin figures shrink with the rank count on
        // any input, localized or not.
        assert!(
            peak_by_ranks[0].0 > peak_by_ranks[1].0 && peak_by_ranks[1].0 > peak_by_ranks[2].0,
            "per-rank pin storage should strictly decrease: {peak_by_ranks:?}"
        );
        assert!(
            peak_by_ranks[0].1 > peak_by_ranks[1].1 && peak_by_ranks[1].1 > peak_by_ranks[2].1,
            "per-rank owned pin storage should strictly decrease: {peak_by_ranks:?}"
        );
    }

    /// The `cfg.dist.distributed` flag routes the whole recursive
    /// bisection stack through this driver with unchanged results.
    #[test]
    fn config_flag_routes_partition_identically() {
        let h = crate::tests::random_hypergraph(250, 500, 4, 31);
        for ranks in [1usize, 2, 4] {
            let mut cfg = dist_cfg(19, 64);
            let dist = run_spmd(ranks, |comm| {
                crate::par::parallel_partition(comm, &h, 4, &cfg)
            });
            cfg.dist.distributed = false;
            let repl = run_spmd(ranks, |comm| {
                crate::par::parallel_partition(comm, &h, 4, &cfg)
            });
            for (a, b) in dist.iter().zip(&repl) {
                assert_eq!(a.part, b.part, "ranks={ranks}");
                assert_eq!(a.cut, b.cut, "ranks={ranks}");
            }
        }
    }

    /// More ranks than vertices: some ranks own nothing at every level.
    /// The cycle must neither panic nor diverge from the replicated
    /// driver.
    #[test]
    fn empty_ranks_match_replicated_driver() {
        let h = crate::tests::grid_hypergraph(3, 4); // 12 vertices
        let targets = PartTargets::uniform(h.total_vertex_weight(), 2, 0.05);
        let fixed = FixedAssignment::free(h.num_vertices());
        let mut cfg = dist_cfg(17, 4);
        cfg.coarsening.min_coarse_vertices = 2;
        cfg.coarsening.coarse_to_factor = 1;
        for ranks in [13usize, 16] {
            let repl = run_spmd(ranks, |comm| {
                let mut rng = StdRng::seed_from_u64(6);
                super::super::driver::par_multilevel(comm, &h, &targets, &fixed, &cfg, &mut rng)
            });
            let dist = run_spmd(ranks, |comm| {
                let mut rng = StdRng::seed_from_u64(6);
                dist_multilevel(comm, &h, &targets, &fixed, &cfg, &mut rng)
            });
            assert_eq!(dist, repl, "ranks={ranks}");
        }
    }

    /// Total per-rank residency — pins, metadata, and every per-vertex
    /// array — must strictly decrease with the rank count, on a *random*
    /// (non-localized) hypergraph: the owner-computes representation has
    /// no replicated term left.
    #[test]
    fn resident_bytes_scale_down_with_ranks() {
        let h = crate::tests::random_hypergraph(400, 800, 5, 37);
        let targets = PartTargets::uniform(h.total_vertex_weight(), 4, 0.05);
        let fixed = FixedAssignment::free(h.num_vertices());
        let cfg = dist_cfg(23, 60);
        let mut peak = Vec::new();
        for ranks in [1usize, 2, 4, 8] {
            let results = run_spmd(ranks, |comm| {
                let mut rng = StdRng::seed_from_u64(8);
                dist_multilevel_stats(comm, &h, &targets, &fixed, &cfg, &mut rng)
            });
            assert!(results.iter().all(|(_, s)| s.dist_levels > 0));
            peak.push(results.iter().map(|(_, s)| s.total_resident_bytes).max().unwrap());
        }
        assert!(
            peak.windows(2).all(|w| w[1] < w[0]),
            "per-rank resident bytes should strictly decrease: {peak:?}"
        );
    }
}
