//! Parallel multilevel hypergraph partitioning with fixed vertices
//! (Section 4, parallel formulation), SPMD over [`dlb_mpisim`].
//!
//! Each rank owns a block of vertices (1D distribution — see DESIGN.md §4
//! for why this simplification of Zoltan's 2D layout preserves the
//! paper's algorithmic behaviour) while replicating the hypergraph
//! structure. The three phases communicate exactly where the paper's
//! implementation does:
//!
//! * **Coarsening** ([`matching`]): IPM runs in *rounds*. Each round,
//!   every rank selects candidate vertices among its owned unmatched
//!   vertices; candidates are sent to all ranks (all-gather); every rank
//!   concurrently computes its best owned match for each candidate
//!   (scores for constraint-infeasible pairs are computed but discarded
//!   at selection, as in Section 4.1); a global best match per candidate
//!   is selected by an all-reduce.
//! * **Coarse partitioning** ([`driver`]): the coarsest hypergraph is
//!   replicated; each rank runs randomized greedy hypergraph growing
//!   with a different seed and the best partition wins (Section 4.2).
//! * **Refinement** ([`refine`]): a localized FM — each rank proposes
//!   moves for its owned boundary vertices against the current global
//!   state; proposals are exchanged and applied deterministically, and
//!   part weights stay synchronized (Section 4.3).
//!
//! K-way partitions use the same recursive-bisection relabeling as the
//! serial path (Section 4.4). All ranks return the identical partition
//! vector.

pub mod dist;
pub mod driver;
pub mod matching;
pub mod refine;

use dlb_hypergraph::subset::induced_subhypergraph;
use dlb_hypergraph::{Hypergraph, PartId};
use dlb_mpisim::Comm;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::{Config, PartTargets};
use crate::fixed::FixedAssignment;
use crate::PartitionResult;

/// Parallel k-way partitioning with fixed vertices via recursive
/// bisection. Must be called collectively by every rank of `comm` with
/// identical arguments; every rank returns the same result.
pub fn parallel_partition_fixed(
    comm: &mut Comm,
    h: &Hypergraph,
    k: usize,
    fixed: &FixedAssignment,
    cfg: &Config,
) -> PartitionResult {
    assert!(k > 0, "k must be positive");
    assert_eq!(fixed.len(), h.num_vertices());
    let depth = (k.max(2) as f64).log2().ceil().max(1.0);
    let eps = (1.0 + cfg.epsilon).powf(1.0 / depth) - 1.0;
    let aux_eps: Vec<f64> = (1..h.load_arity())
        .map(|c| (1.0 + cfg.epsilon_for(c)).powf(1.0 / depth) - 1.0)
        .collect();
    let mut salt = 0u64;
    let part = recurse(comm, h, k, fixed, cfg, eps, &aux_eps, &mut salt);
    debug_assert!(fixed.is_respected_by(&part));
    PartitionResult::evaluate(h, part, k)
}

/// Parallel k-way partitioning without fixed vertices.
pub fn parallel_partition(
    comm: &mut Comm,
    h: &Hypergraph,
    k: usize,
    cfg: &Config,
) -> PartitionResult {
    parallel_partition_fixed(comm, h, k, &FixedAssignment::free(h.num_vertices()), cfg)
}

#[allow(clippy::too_many_arguments)]
fn recurse(
    comm: &mut Comm,
    h: &Hypergraph,
    k: usize,
    fixed: &FixedAssignment,
    cfg: &Config,
    eps: f64,
    aux_eps: &[f64],
    salt: &mut u64,
) -> Vec<PartId> {
    if k == 1 {
        return vec![0; h.num_vertices()];
    }
    if h.num_vertices() == 0 {
        return Vec::new();
    }

    let k0 = k.div_ceil(2);
    let k1 = k - k0;
    *salt += 1;
    // Every rank derives the same base seed for this bisection; ranks
    // decorrelate internally where the algorithm calls for it.
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(*salt)));

    let side_fixed = fixed.bisection_sides(k0);
    let mut targets = PartTargets::proportional(h.total_vertex_weight(), &[k0, k1], eps);
    // Auxiliary constraints ride along with side targets proportional to
    // the final part counts (the SPMD drivers support aux epsilons but
    // not per-part capacities). Never reached at arity 1.
    let arity = h.load_arity();
    if arity > 1 {
        let aux = (1..arity)
            .map(|c| {
                crate::config::AuxTargets::proportional(
                    h.total_load(c),
                    &[k0 as f64, k1 as f64],
                    aux_eps.get(c - 1).copied().unwrap_or(eps),
                )
            })
            .collect();
        targets = targets.with_aux(aux);
    }
    let sides = driver::multilevel(comm, h, &targets, &side_fixed, cfg, &mut rng);

    let keep0: Vec<bool> = sides.iter().map(|&s| s == 0).collect();
    let keep1: Vec<bool> = sides.iter().map(|&s| s == 1).collect();
    let side0 = induced_subhypergraph(h, &keep0);
    let side1 = induced_subhypergraph(h, &keep1);
    let fixed0 = FixedAssignment::from_options(
        &side0.to_base.iter().map(|&v| fixed.get(v)).collect::<Vec<_>>(),
    );
    let fixed1 = FixedAssignment::from_options(
        &side1
            .to_base
            .iter()
            .map(|&v| fixed.get(v).map(|p| p - k0))
            .collect::<Vec<_>>(),
    );

    let part0 = recurse(comm, &side0.hypergraph, k0, &fixed0, cfg, eps, aux_eps, salt);
    let part1 = recurse(comm, &side1.hypergraph, k1, &fixed1, cfg, eps, aux_eps, salt);

    let mut part = vec![0usize; h.num_vertices()];
    for (new_v, &old_v) in side0.to_base.iter().enumerate() {
        part[old_v] = part0[new_v];
    }
    for (new_v, &old_v) in side1.to_base.iter().enumerate() {
        part[old_v] = k0 + part1[new_v];
    }
    part
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_hypergraph::metrics;
    use dlb_mpisim::run_spmd;

    #[test]
    fn parallel_matches_constraints_and_balance() {
        let h = crate::tests::grid_hypergraph(12, 12);
        let mut fixed = FixedAssignment::free(144);
        fixed.fix(0, 0);
        fixed.fix(143, 3);
        let cfg = Config::seeded(21);
        let results = run_spmd(4, |comm| {
            parallel_partition_fixed(comm, &h, 4, &fixed, &cfg)
        });
        // All ranks agree.
        for r in &results[1..] {
            assert_eq!(r.part, results[0].part);
        }
        let r = &results[0];
        assert_eq!(r.part[0], 0);
        assert_eq!(r.part[143], 3);
        let imb = metrics::imbalance(&h, &r.part, 4);
        assert!(imb <= 1.0 + cfg.epsilon + 0.05, "imbalance {imb}");
    }

    #[test]
    fn parallel_single_rank_reduces_to_serial_quality() {
        let h = crate::tests::grid_hypergraph(10, 10);
        let cfg = Config::seeded(5);
        let results = run_spmd(1, |comm| parallel_partition(comm, &h, 2, &cfg));
        let r = &results[0];
        // A 10x10 grid bisection should find a cut near 10.
        assert!(r.cut <= 20.0, "cut {}", r.cut);
        assert!(r.imbalance <= 1.06);
    }

    #[test]
    fn parallel_quality_comparable_to_serial() {
        let h = crate::tests::random_hypergraph(300, 600, 4, 23);
        let cfg = Config::seeded(31);
        let serial = crate::partition_hypergraph(&h, 4, &cfg);
        let par = run_spmd(4, |comm| parallel_partition(comm, &h, 4, &cfg))
            .pop()
            .unwrap();
        assert!(
            par.cut <= serial.cut * 1.6 + 16.0,
            "parallel cut {} vs serial {}",
            par.cut,
            serial.cut
        );
    }
}
