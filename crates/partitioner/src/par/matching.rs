//! Round-based parallel inner-product matching (Section 4.1, parallel).
//!
//! Mirrors the candidate protocol of Zoltan's parallel IPM: in each round
//! every rank nominates a subset of its owned unmatched vertices as
//! *candidates*, candidates travel to all ranks (all-gather), every rank
//! computes its best owned partner for every candidate (computing scores
//! for fixed-incompatible pairs too, discarding them only at selection —
//! the paper notes this adds insignificant overhead), and a global
//! all-reduce picks each candidate's best partner. All ranks then apply
//! the winning matches identically, so the coarse hypergraph is built
//! consistently everywhere without further communication.

use dlb_hypergraph::{parallel, Hypergraph};
use dlb_mpisim::{BlockDist, Comm};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::config::CoarseningConfig;
use crate::fixed::FixedAssignment;
use crate::matching::Matching;

/// Fraction of a rank's unmatched owned vertices nominated per round.
pub(crate) const CANDIDATE_FRACTION: f64 = 0.5;
/// Maximum candidate rounds per coarsening level.
pub(crate) const MAX_ROUNDS: usize = 4;

/// A rank's proposal for one candidate: (score, proposing rank, partner).
/// Reduced by lexicographic max on (score, -rank) so ties resolve to the
/// lowest rank deterministically.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Proposal {
    pub(crate) score: f64,
    pub(crate) rank: usize,
    pub(crate) partner: usize,
}

impl Proposal {
    pub(crate) const NONE: Proposal =
        Proposal { score: 0.0, rank: usize::MAX, partner: usize::MAX };

    pub(crate) fn better_of(a: &Proposal, b: &Proposal) -> Proposal {
        match a.score.total_cmp(&b.score) {
            std::cmp::Ordering::Greater => *a,
            std::cmp::Ordering::Less => *b,
            std::cmp::Ordering::Equal => {
                if a.rank <= b.rank {
                    *a
                } else {
                    *b
                }
            }
        }
    }
}

/// Draws this round's candidate subset from a rank's unmatched owned
/// vertices: shuffle with the rank-decorrelated stream, keep the ceil
/// fraction, and sort ascending so the all-gathered candidate order is
/// deterministic. Shared by the replicated and distributed matchers so
/// both draw bit-identical candidate sets from the same RNG state.
pub(crate) fn draw_candidates(mut unmatched: Vec<usize>, rng: &mut StdRng) -> Vec<usize> {
    unmatched.shuffle(rng);
    let ncand =
        ((unmatched.len() as f64 * CANDIDATE_FRACTION).ceil() as usize).min(unmatched.len());
    let mut cands = unmatched[..ncand].to_vec();
    cands.sort_unstable();
    cands
}

/// Computes IPM scores of `u` against all unmatched vertices in the
/// owned range `range`, returning the best feasible partner.
#[allow(clippy::too_many_arguments)]
fn best_owned_partner(
    h: &Hypergraph,
    u: usize,
    mate: &[usize],
    taken: &[bool],
    fixed: &FixedAssignment,
    cfg: &CoarseningConfig,
    range: &std::ops::Range<usize>,
    scores: &mut [f64],
    touched: &mut Vec<usize>,
) -> Option<(usize, f64)> {
    touched.clear();
    for &j in h.vertex_nets(u) {
        let size = h.net_size(j);
        if size < 2 || size > cfg.max_net_size_for_matching {
            continue;
        }
        let contrib = if cfg.scaled_ipm {
            h.net_cost(j) / (size - 1) as f64
        } else {
            h.net_cost(j)
        };
        if contrib <= 0.0 {
            continue;
        }
        for &w in h.net(j) {
            if w == u || !range.contains(&w) || mate[w] != w || taken[w] {
                continue;
            }
            if scores[w] == 0.0 {
                touched.push(w);
            }
            scores[w] += contrib;
        }
    }
    let mut best: Option<(usize, f64)> = None;
    for &w in touched.iter() {
        let s = scores[w];
        scores[w] = 0.0;
        // Feasibility check happens here, after scoring (Section 4.1).
        if fixed.compatible(u, w) && best.is_none_or(|(_, bs)| s > bs) {
            best = Some((w, s));
        }
    }
    best
}

/// Per-candidate chunk size for the parallel scoring stage: candidate
/// scoring is heavier per item than vertex scoring, so chunks are small.
const CAND_CHUNK: usize = 64;

/// Like [`best_owned_partner`] but returns the *full* partner list in
/// first-touch order, without the `taken` filter. The IPM score of a pair
/// is independent of the matching state, so the list can be computed
/// concurrently for many candidates; the serial selection then applies
/// the `taken` and fixed-compatibility filters. Filtering a subsequence
/// preserves first-touch order, so selection over the filtered list is
/// identical to [`best_owned_partner`]'s.
fn owned_partner_list(
    h: &Hypergraph,
    u: usize,
    mate: &[usize],
    cfg: &CoarseningConfig,
    range: &std::ops::Range<usize>,
    scores: &mut [f64],
    touched: &mut Vec<usize>,
) -> Vec<(usize, f64)> {
    touched.clear();
    for &j in h.vertex_nets(u) {
        let size = h.net_size(j);
        if size < 2 || size > cfg.max_net_size_for_matching {
            continue;
        }
        let contrib = if cfg.scaled_ipm {
            h.net_cost(j) / (size - 1) as f64
        } else {
            h.net_cost(j)
        };
        if contrib <= 0.0 {
            continue;
        }
        for &w in h.net(j) {
            if w == u || !range.contains(&w) || mate[w] != w {
                continue;
            }
            if scores[w] == 0.0 {
                touched.push(w);
            }
            scores[w] += contrib;
        }
    }
    let mut list = Vec::with_capacity(touched.len());
    for &w in touched.iter() {
        list.push((w, scores[w]));
        scores[w] = 0.0;
    }
    list
}

/// One level of parallel matching. Collective: all ranks must call with
/// identical `h`, `fixed`, `cfg`; `rng` seeds may differ per rank only
/// through `comm.rank()` (handled internally). Returns the same matching
/// on every rank.
pub fn par_ipm_matching(
    comm: &mut Comm,
    h: &Hypergraph,
    fixed: &FixedAssignment,
    cfg: &CoarseningConfig,
    rng: &mut StdRng,
) -> Matching {
    par_ipm_matching_threads(comm, h, fixed, cfg, rng, 1)
}

/// [`par_ipm_matching`] with rank-local worker threads for the candidate
/// scoring stage (each rank scores its share of candidates over
/// `threads` threads). Bit-identical to the single-threaded matcher at
/// every thread count.
pub fn par_ipm_matching_threads(
    comm: &mut Comm,
    h: &Hypergraph,
    fixed: &FixedAssignment,
    cfg: &CoarseningConfig,
    rng: &mut StdRng,
    threads: usize,
) -> Matching {
    if cfg.local_ipm {
        return par_local_ipm_matching(comm, h, fixed, cfg, rng);
    }
    let n = h.num_vertices();
    let dist = BlockDist::new(n, comm.size());
    let my_range = dist.range(comm.rank());
    // Per-rank decorrelated RNG derived from the shared stream so all
    // ranks advance their shared `rng` identically.
    let shared_draw: u64 = rng.gen();
    let mut my_rng = StdRng::seed_from_u64(shared_draw ^ (comm.rank() as u64).wrapping_mul(0xA5A5_5A5A_DEAD_BEEF));

    let mut mate: Vec<usize> = (0..n).collect();
    let mut num_pairs = 0usize;
    let mut scores = vec![0.0f64; n];
    let mut touched: Vec<usize> = Vec::new();

    for _round in 0..MAX_ROUNDS {
        // Nominate candidates among owned unmatched vertices.
        let my_unmatched: Vec<usize> = my_range.clone().filter(|&v| mate[v] == v).collect();
        let my_cands = draw_candidates(my_unmatched, &mut my_rng);

        // Candidates travel to every rank.
        let all_cands: Vec<usize> = comm
            .allgather(my_cands)
            .into_iter()
            .flatten()
            .collect();
        if all_cands.is_empty() {
            break;
        }

        // Every rank proposes its best owned partner per candidate.
        // `taken` prevents one owned vertex from being proposed to two
        // candidates in the same round.
        let mut taken = vec![false; n];
        let proposals: Vec<(f64, usize, usize)> = if threads > 1 {
            // Parallel scoring: partner lists per candidate (chunked over
            // the candidate array, per-worker score buffers), then serial
            // selection applying the `taken` filter in candidate order —
            // identical to the serial loop, since pair scores do not
            // depend on `taken`.
            let lists: Vec<Vec<(usize, f64)>> = parallel::map_chunks_with(
                threads,
                all_cands.len(),
                CAND_CHUNK,
                || (vec![0.0f64; n], Vec::<usize>::new()),
                |(scores, touched), _, chunk| {
                    chunk
                        .map(|i| {
                            owned_partner_list(
                                h, all_cands[i], &mate, cfg, &my_range, scores, touched,
                            )
                        })
                        .collect::<Vec<_>>()
                },
            )
            .into_iter()
            .flatten()
            .collect();
            all_cands
                .iter()
                .zip(&lists)
                .map(|(&u, list)| {
                    let mut best: Option<(usize, f64)> = None;
                    for &(w, s) in list {
                        if taken[w] {
                            continue;
                        }
                        if fixed.compatible(u, w) && best.is_none_or(|(_, bs)| s > bs) {
                            best = Some((w, s));
                        }
                    }
                    match best {
                        Some((w, s)) if !all_cands.contains(&w) || w > u => {
                            taken[w] = true;
                            (s, comm.rank(), w)
                        }
                        _ => (Proposal::NONE.score, Proposal::NONE.rank, Proposal::NONE.partner),
                    }
                })
                .collect()
        } else {
            all_cands
                .iter()
                .map(|&u| {
                    // A candidate cannot partner itself; candidates owned by
                    // this rank may still be proposed as partners of others.
                    let best = best_owned_partner(
                        h, u, &mate, &taken, fixed, cfg, &my_range, &mut scores, &mut touched,
                    );
                    match best {
                        Some((w, s)) if !all_cands.contains(&w) || w > u => {
                            taken[w] = true;
                            (s, comm.rank(), w)
                        }
                        _ => (Proposal::NONE.score, Proposal::NONE.rank, Proposal::NONE.partner),
                    }
                })
                .collect()
        };

        // Global best proposal per candidate.
        let winners = comm.allreduce_vec(proposals, |a, b| {
            let pa = Proposal { score: a.0, rank: a.1, partner: a.2 };
            let pb = Proposal { score: b.0, rank: b.1, partner: b.2 };
            let w = Proposal::better_of(&pa, &pb);
            (w.score, w.rank, w.partner)
        });

        // Apply winners in deterministic candidate order; identical on
        // all ranks. Conflicts (partner matched earlier this loop) skip.
        let mut matched_this_round = 0usize;
        for (&u, &(score, rank, partner)) in all_cands.iter().zip(&winners) {
            if rank == usize::MAX || score <= 0.0 {
                continue;
            }
            if mate[u] != u || mate[partner] != partner || u == partner {
                continue;
            }
            debug_assert!(fixed.compatible(u, partner));
            mate[u] = partner;
            mate[partner] = u;
            num_pairs += 1;
            matched_this_round += 1;
        }
        if matched_this_round == 0 {
            break;
        }
    }

    Matching { mate, num_pairs }
}

/// Local IPM (the paper's proposed speedup, Section 5/6: "using local
/// IPM instead of global IPM"): every rank greedily matches its owned
/// vertices against *owned* partners only — no candidate broadcast, no
/// best-match reduction — then the disjoint per-rank matchings are
/// merged with a single all-gather. Cross-rank pairs are lost (the
/// quality trade), but per-level communication drops from `O(rounds)`
/// collectives to one.
fn par_local_ipm_matching(
    comm: &mut Comm,
    h: &Hypergraph,
    fixed: &FixedAssignment,
    cfg: &CoarseningConfig,
    rng: &mut StdRng,
) -> Matching {
    let n = h.num_vertices();
    let dist = BlockDist::new(n, comm.size());
    let my_range = dist.range(comm.rank());
    let shared_draw: u64 = rng.gen();
    let mut my_rng = StdRng::seed_from_u64(
        shared_draw ^ (comm.rank() as u64).wrapping_mul(0x0BAD_CAFE_F00D_BEEF),
    );

    let mut mate: Vec<usize> = (0..n).collect();
    let mut scores = vec![0.0f64; n];
    let mut touched: Vec<usize> = Vec::new();
    let taken = vec![false; n];

    let mut order: Vec<usize> = my_range.clone().collect();
    order.shuffle(&mut my_rng);
    let mut my_pairs: Vec<(usize, usize)> = Vec::new();
    for &u in &order {
        if mate[u] != u {
            continue;
        }
        if let Some((w, _)) = best_owned_partner(
            h, u, &mate, &taken, fixed, cfg, &my_range, &mut scores, &mut touched,
        ) {
            mate[u] = w;
            mate[w] = u;
            my_pairs.push((u.min(w), u.max(w)));
        }
    }

    // Merge the per-rank matchings; ownership makes them disjoint.
    let all_pairs: Vec<(usize, usize)> = comm.allgather(my_pairs).into_iter().flatten().collect();
    let mut mate: Vec<usize> = (0..n).collect();
    for &(u, w) in &all_pairs {
        debug_assert!(mate[u] == u && mate[w] == w, "ranks produced overlapping pairs");
        mate[u] = w;
        mate[w] = u;
    }
    Matching { mate, num_pairs: all_pairs.len() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_mpisim::run_spmd;
    use rand::SeedableRng;

    #[test]
    fn all_ranks_agree_on_matching() {
        let h = crate::tests::grid_hypergraph(10, 10);
        let fixed = FixedAssignment::free(100);
        let cfg = CoarseningConfig::default();
        let results = run_spmd(4, |comm| {
            let mut rng = StdRng::seed_from_u64(7);
            par_ipm_matching(comm, &h, &fixed, &cfg, &mut rng).mate
        });
        for r in &results[1..] {
            assert_eq!(*r, results[0]);
        }
    }

    #[test]
    fn parallel_matching_is_valid_and_productive() {
        let h = crate::tests::grid_hypergraph(12, 12);
        let fixed = FixedAssignment::free(144);
        let cfg = CoarseningConfig::default();
        let results = run_spmd(3, |comm| {
            let mut rng = StdRng::seed_from_u64(9);
            par_ipm_matching(comm, &h, &fixed, &cfg, &mut rng)
        });
        let m = &results[0];
        m.validate(&fixed).unwrap();
        // A grid should match a decent fraction of vertices.
        assert!(
            m.num_pairs * 2 >= 144 / 3,
            "only {} pairs matched",
            m.num_pairs
        );
    }

    #[test]
    fn local_ipm_matches_only_within_blocks() {
        let h = crate::tests::grid_hypergraph(10, 10);
        let fixed = FixedAssignment::free(100);
        let cfg = CoarseningConfig { local_ipm: true, ..Default::default() };
        let results = run_spmd(4, |comm| {
            let mut rng = StdRng::seed_from_u64(5);
            let dist = BlockDist::new(100, comm.size());
            let m = par_ipm_matching(comm, &h, &fixed, &cfg, &mut rng);
            (m, dist)
        });
        let (m, dist) = &results[0];
        m.validate(&fixed).unwrap();
        assert!(m.num_pairs > 0, "local matching should find pairs");
        for v in 0..100 {
            let u = m.mate[v];
            if u != v {
                assert_eq!(
                    dist.owner(v),
                    dist.owner(u),
                    "local IPM must not match across ranks ({v}-{u})"
                );
            }
        }
        // All ranks agree.
        for r in &results[1..] {
            assert_eq!(r.0.mate, m.mate);
        }
    }

    #[test]
    fn local_ipm_whole_partition_works() {
        // End-to-end: the parallel partitioner with local IPM still
        // produces a valid, reasonably balanced partition.
        let h = crate::tests::grid_hypergraph(12, 12);
        let mut cfg = crate::Config::seeded(3);
        cfg.coarsening.local_ipm = true;
        let results = run_spmd(3, |comm| {
            crate::par::parallel_partition(comm, &h, 4, &cfg)
        });
        let r = &results[0];
        assert!(r.part.iter().all(|&p| p < 4));
        assert!(r.imbalance <= 1.12, "imbalance {}", r.imbalance);
    }

    #[test]
    fn threaded_scoring_matches_single_threaded() {
        // The rank-local parallel scoring stage must reproduce the
        // single-threaded matcher exactly, at every thread count.
        let h = crate::tests::random_hypergraph(200, 400, 5, 41);
        let mut fixed = FixedAssignment::free(200);
        for v in (0..200).step_by(9) {
            fixed.fix(v, v % 3);
        }
        let cfg = CoarseningConfig::default();
        let reference = run_spmd(3, |comm| {
            let mut rng = StdRng::seed_from_u64(13);
            par_ipm_matching_threads(comm, &h, &fixed, &cfg, &mut rng, 1).mate
        });
        for threads in [2, 4] {
            let threaded = run_spmd(3, |comm| {
                let mut rng = StdRng::seed_from_u64(13);
                par_ipm_matching_threads(comm, &h, &fixed, &cfg, &mut rng, threads).mate
            });
            assert_eq!(threaded, reference, "threads={threads}");
        }
    }

    #[test]
    fn parallel_matching_respects_fixed_constraint() {
        let h = crate::tests::grid_hypergraph(8, 8);
        let mut fixed = FixedAssignment::free(64);
        // Checkerboard of incompatible fixations on the left column pairs.
        for v in 0..8 {
            fixed.fix(v, v % 2);
        }
        let cfg = CoarseningConfig::default();
        let results = run_spmd(2, |comm| {
            let mut rng = StdRng::seed_from_u64(11);
            par_ipm_matching(comm, &h, &fixed, &cfg, &mut rng)
        });
        results[0].validate(&fixed).unwrap();
    }
}
