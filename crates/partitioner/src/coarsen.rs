//! Coarse-hypergraph construction (Section 4.1).
//!
//! Given a matching, merge each matched pair into one coarse vertex
//! (weights and sizes sum; fixedness propagates per the three scenarios
//! of Section 4.1), translate every net's pins to coarse ids, drop nets
//! reduced below two pins (they can never be cut), and collapse identical
//! nets into one net with the summed cost — the standard multilevel
//! hygiene that keeps coarse hypergraphs faithful *and* small.

use std::collections::HashMap;

use dlb_hypergraph::{parallel, Hypergraph, HypergraphBuilder};
use rand::rngs::StdRng;

use crate::config::{CoarseningConfig, Determinism};
use crate::fixed::FixedAssignment;
use crate::matching::{ipm_matching_mode, Matching};

/// One coarsening level: the coarse hypergraph, the fine→coarse vertex
/// map, and the coarse fixed assignment.
#[derive(Clone, Debug)]
pub struct CoarseLevel {
    /// The coarse hypergraph.
    pub coarse: Hypergraph,
    /// `fine_to_coarse[fine_v] = coarse_v`.
    pub fine_to_coarse: Vec<usize>,
    /// Fixed constraint translated to coarse vertices.
    pub coarse_fixed: FixedAssignment,
}

/// Contracts `h` along `matching`.
pub fn contract(h: &Hypergraph, matching: &Matching, fixed: &FixedAssignment) -> CoarseLevel {
    contract_threads(h, matching, fixed, 1)
}

/// [`contract`] with an explicit worker-thread count. With `threads > 1`
/// the pin remapping (translate, sort, dedup per net) runs across
/// workers over fixed net chunks; the duplicate-net merge then consumes
/// the per-chunk results in net order, so the coarse hypergraph is
/// identical to the serial construction at any thread count.
pub fn contract_threads(
    h: &Hypergraph,
    matching: &Matching,
    fixed: &FixedAssignment,
    threads: usize,
) -> CoarseLevel {
    let n = h.num_vertices();
    debug_assert!(matching.validate(fixed).is_ok());

    // Assign coarse ids: the smaller endpoint of each pair (or a
    // singleton) gets the next id, in fine-vertex order for determinism.
    let mut fine_to_coarse = vec![usize::MAX; n];
    let mut next = 0usize;
    for v in 0..n {
        let m = matching.mate[v];
        if m >= v {
            fine_to_coarse[v] = next;
            if m != v {
                fine_to_coarse[m] = next;
            }
            next += 1;
        }
    }
    let nc = next;

    // Coarse attributes and fixedness.
    let mut cw = vec![0.0f64; nc];
    let mut cs = vec![0.0f64; nc];
    let mut cfixed_opts: Vec<Option<usize>> = vec![None; nc];
    for v in 0..n {
        let c = fine_to_coarse[v];
        cw[c] += h.vertex_weight(v);
        cs[c] += h.vertex_size(v);
        if let Some(p) = fixed.get(v) {
            debug_assert!(cfixed_opts[c].is_none_or(|q| q == p));
            cfixed_opts[c] = Some(p);
        }
    }

    // Translate nets, dropping sub-2-pin nets and collapsing duplicates.
    let mut b = HypergraphBuilder::new(nc);
    for (c, (&w, &s)) in cw.iter().zip(&cs).enumerate() {
        b.set_vertex_weight(c, w);
        b.set_vertex_size(c, s);
    }
    // Auxiliary load constraints sum per coarse vertex in the same fine
    // order as the primary column. The scalar pipeline (arity 1) never
    // enters this block, so its coarse weights stay bit-identical.
    let arity = h.load_arity();
    if arity > 1 {
        let mut columns = Vec::with_capacity(arity);
        columns.push(cw.clone());
        for c in 1..arity {
            let col = h.loads().constraint(c);
            let mut cc = vec![0.0f64; nc];
            for v in 0..n {
                cc[fine_to_coarse[v]] += col[v];
            }
            columns.push(cc);
        }
        b.set_loads(dlb_hypergraph::VertexLoads::from_columns(columns));
    }
    let mut dedup: HashMap<Box<[usize]>, usize> = HashMap::new();
    let mut collapsed_costs: Vec<f64> = Vec::new();
    let mut collapsed_pins: Vec<Box<[usize]>> = Vec::new();
    // Effective (not requested) concurrency: the chunked remap is
    // result-identical to the serial loop, so on a host that can only
    // run one thread the serial loop wins — no per-chunk result
    // buffers, no pool dispatch.
    if parallel::effective_concurrency(threads) > 1 {
        // Remap + sort + dedup each net's pins across workers, then merge
        // the surviving nets into the dedup map in net order — the same
        // insertion order as the serial loop, so collapsed net ids and
        // summed costs come out identical.
        let remapped = remap_nets_parallel(h, &fine_to_coarse, threads);
        for (key, cost) in remapped.into_iter().flatten() {
            match dedup.get(&key) {
                Some(&idx) => collapsed_costs[idx] += cost,
                None => {
                    dedup.insert(key.clone(), collapsed_costs.len());
                    collapsed_costs.push(cost);
                    collapsed_pins.push(key);
                }
            }
        }
    } else {
        let mut pins: Vec<usize> = Vec::new();
        for j in 0..h.num_nets() {
            pins.clear();
            pins.extend(h.net(j).iter().map(|&v| fine_to_coarse[v]));
            pins.sort_unstable();
            pins.dedup();
            if pins.len() < 2 {
                continue;
            }
            let key: Box<[usize]> = pins.as_slice().into();
            match dedup.get(&key) {
                Some(&idx) => collapsed_costs[idx] += h.net_cost(j),
                None => {
                    dedup.insert(key.clone(), collapsed_costs.len());
                    collapsed_costs.push(h.net_cost(j));
                    collapsed_pins.push(key);
                }
            }
        }
    }
    for (pins, cost) in collapsed_pins.iter().zip(&collapsed_costs) {
        b.add_net(*cost, pins.iter().copied());
    }

    CoarseLevel {
        coarse: b.build(),
        fine_to_coarse,
        coarse_fixed: FixedAssignment::from_options(&cfixed_opts),
    }
}

/// The parallel remap stage of [`contract_threads`]: translate, sort,
/// dedup each net's pins over fixed net chunks, dropping sub-2-pin
/// nets. Chunk boundaries depend only on the net count and the caller
/// consumes chunk results in net order, so the output is independent of
/// the worker count.
fn remap_nets_parallel(
    h: &Hypergraph,
    fine_to_coarse: &[usize],
    threads: usize,
) -> Vec<Vec<(Box<[usize]>, f64)>> {
    parallel::map_chunks_with(
        threads,
        h.num_nets(),
        parallel::DEFAULT_CHUNK,
        // Arena-backed per-worker remap buffer (reused across calls
        // and levels on persistent pool workers).
        parallel::scratch_vec::<usize>,
        |pins, _, range| {
            let mut kept: Vec<(Box<[usize]>, f64)> = Vec::with_capacity(range.len());
            for j in range {
                pins.clear();
                pins.extend(h.net(j).iter().map(|&v| fine_to_coarse[v]));
                pins.sort_unstable();
                pins.dedup();
                if pins.len() >= 2 {
                    kept.push((pins.as_slice().into(), h.net_cost(j)));
                }
            }
            kept
        },
    )
}

/// A full coarsening hierarchy, finest first. `levels[i]` maps level `i`'s
/// hypergraph down to level `i+1`'s; the coarsest hypergraph is
/// `levels.last().coarse` (or the original if no level was built).
#[derive(Debug, Default)]
pub struct Hierarchy {
    /// Levels from finest contraction to coarsest.
    pub levels: Vec<CoarseLevel>,
}

impl Hierarchy {
    /// Projects a partition of the coarsest hypergraph up to the finest
    /// (original) vertices, without refinement.
    pub fn project_to_finest(&self, coarsest_part: &[usize]) -> Vec<usize> {
        let mut part = coarsest_part.to_vec();
        for level in self.levels.iter().rev() {
            let mut finer = vec![0usize; level.fine_to_coarse.len()];
            for (v, &c) in level.fine_to_coarse.iter().enumerate() {
                finer[v] = part[c];
            }
            part = finer;
        }
        part
    }
}

/// Repeatedly matches and contracts `h` until it has at most
/// `target_vertices` vertices, a level shrinks by less than
/// `cfg.min_reduction`, or `cfg.max_levels` is hit.
pub fn coarsen_to(
    h: &Hypergraph,
    fixed: &FixedAssignment,
    target_vertices: usize,
    cfg: &CoarseningConfig,
    rng: &mut StdRng,
) -> Hierarchy {
    coarsen_to_threads(h, fixed, target_vertices, cfg, rng, 1)
}

/// [`coarsen_to`] with an explicit worker-thread count for matching and
/// contraction. Identical hierarchies at any thread count.
pub fn coarsen_to_threads(
    h: &Hypergraph,
    fixed: &FixedAssignment,
    target_vertices: usize,
    cfg: &CoarseningConfig,
    rng: &mut StdRng,
    threads: usize,
) -> Hierarchy {
    coarsen_to_mode(h, fixed, target_vertices, cfg, rng, threads, Determinism::Strict)
}

/// [`coarsen_to_threads`] with an explicit [`Determinism`] mode for the
/// matcher. `Strict` keeps hierarchies bit-identical at any thread
/// count; `Fast` (with `threads > 1`) matches concurrently, so the
/// hierarchy depends on scheduling — contraction itself stays a
/// deterministic function of whatever matching it is given.
#[allow(clippy::too_many_arguments)]
pub fn coarsen_to_mode(
    h: &Hypergraph,
    fixed: &FixedAssignment,
    target_vertices: usize,
    cfg: &CoarseningConfig,
    rng: &mut StdRng,
    threads: usize,
    determinism: Determinism,
) -> Hierarchy {
    let mut hierarchy = Hierarchy::default();
    let mut current = h.clone();
    let mut current_fixed = fixed.clone();

    while current.num_vertices() > target_vertices && hierarchy.levels.len() < cfg.max_levels {
        let span = dlb_trace::span!(
            "coarsen.level",
            level = hierarchy.levels.len(),
            vertices = current.num_vertices(),
            nets = current.num_nets(),
            pins = current.num_pins(),
        );
        let matching =
            ipm_matching_mode(&current, &current_fixed, None, cfg, rng, threads, determinism);
        let before = current.num_vertices();
        let after = matching.coarse_count();
        // Unsuccessful coarsening: the paper stops when a step fails to
        // shrink the hypergraph by the threshold (typically 10%).
        if ((before - after) as f64) < before as f64 * cfg.min_reduction {
            break;
        }
        let level = contract_threads(&current, &matching, &current_fixed, threads);
        span.attr("matches", matching.num_pairs);
        span.attr("coarse_vertices", level.coarse.num_vertices());
        dlb_trace::count(dlb_trace::Counter::CoarsenLevels, 1);
        current = level.coarse.clone();
        current_fixed = level.coarse_fixed.clone();
        hierarchy.levels.push(level);
    }
    hierarchy
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn pair_matching(n: usize, pairs: &[(usize, usize)]) -> Matching {
        let mut mate: Vec<usize> = (0..n).collect();
        for &(u, v) in pairs {
            mate[u] = v;
            mate[v] = u;
        }
        Matching { mate, num_pairs: pairs.len() }
    }

    /// The chunked remap stage yields exactly the serial translate /
    /// sort / dedup / drop result in net order at every worker count —
    /// exercised directly so it is covered even on hosts where
    /// `effective_concurrency` routes [`contract_threads`] to the
    /// serial loop.
    #[test]
    fn parallel_net_remap_matches_serial() {
        let h = crate::tests::random_hypergraph(120, 300, 5, 77);
        let m = {
            let mut mate: Vec<usize> = (0..120).collect();
            for v in (0..120).step_by(2) {
                mate[v] = v + 1;
                mate[v + 1] = v;
            }
            Matching { mate, num_pairs: 60 }
        };
        let fixed = FixedAssignment::free(120);
        let lvl = contract(&h, &m, &fixed);

        let mut serial: Vec<(Box<[usize]>, f64)> = Vec::new();
        let mut pins: Vec<usize> = Vec::new();
        for j in 0..h.num_nets() {
            pins.clear();
            pins.extend(h.net(j).iter().map(|&v| lvl.fine_to_coarse[v]));
            pins.sort_unstable();
            pins.dedup();
            if pins.len() >= 2 {
                serial.push((pins.as_slice().into(), h.net_cost(j)));
            }
        }
        for threads in [2usize, 4, 16] {
            let par: Vec<(Box<[usize]>, f64)> =
                remap_nets_parallel(&h, &lvl.fine_to_coarse, threads)
                    .into_iter()
                    .flatten()
                    .collect();
            assert_eq!(par, serial, "threads {threads}");
        }
    }

    #[test]
    fn contract_merges_weights_and_sizes() {
        let mut h = Hypergraph::from_nets_unit(4, &[vec![0, 1], vec![1, 2], vec![2, 3]]);
        h.set_vertex_weight(0, 2.0);
        h.set_vertex_size(1, 3.0);
        let m = pair_matching(4, &[(0, 1), (2, 3)]);
        let fixed = FixedAssignment::free(4);
        let lvl = contract(&h, &m, &fixed);
        assert_eq!(lvl.coarse.num_vertices(), 2);
        assert_eq!(lvl.coarse.vertex_weight(0), 3.0); // 2 + 1
        assert_eq!(lvl.coarse.vertex_size(0), 4.0); // 1 + 3
        lvl.coarse.validate().unwrap();
    }

    #[test]
    fn contract_drops_internal_nets_and_keeps_cut_nets() {
        let h = Hypergraph::from_nets_unit(4, &[vec![0, 1], vec![1, 2], vec![2, 3]]);
        let m = pair_matching(4, &[(0, 1), (2, 3)]);
        let lvl = contract(&h, &m, &FixedAssignment::free(4));
        // Nets {0,1} and {2,3} become single-pin and vanish; {1,2} survives.
        assert_eq!(lvl.coarse.num_nets(), 1);
        assert_eq!(lvl.coarse.net(0), &[0, 1]);
    }

    #[test]
    fn contract_collapses_identical_nets() {
        let h = Hypergraph::from_nets(
            6,
            &[vec![0, 2], vec![1, 3], vec![4, 5]],
            vec![1.0, 2.0, 5.0],
        );
        // Merge 0+1 and 2+3: nets {0,2} and {1,3} both become {c0, c1}.
        let m = pair_matching(6, &[(0, 1), (2, 3)]);
        let lvl = contract(&h, &m, &FixedAssignment::free(6));
        assert_eq!(lvl.coarse.num_nets(), 2);
        // The collapsed net carries the summed cost 3.0.
        let costs: Vec<f64> = (0..2).map(|j| lvl.coarse.net_cost(j)).collect();
        assert!(costs.contains(&3.0));
        assert!(costs.contains(&5.0));
    }

    #[test]
    fn fixedness_propagates() {
        let h = Hypergraph::from_nets_unit(4, &[vec![0, 1], vec![2, 3]]);
        let mut fixed = FixedAssignment::free(4);
        fixed.fix(1, 2);
        let m = pair_matching(4, &[(0, 1)]);
        let lvl = contract(&h, &m, &fixed);
        // Coarse vertex of {0,1} is fixed to 2; coarse singletons 2,3 free.
        let c01 = lvl.fine_to_coarse[0];
        assert_eq!(lvl.coarse_fixed.get(c01), Some(2));
        assert_eq!(lvl.coarse_fixed.num_fixed(), 1);
    }

    #[test]
    fn coarsen_to_reaches_target() {
        let h = crate::tests::grid_hypergraph(12, 12);
        let fixed = FixedAssignment::free(144);
        let mut rng = StdRng::seed_from_u64(5);
        let hier = coarsen_to(&h, &fixed, 20, &CoarseningConfig::default(), &mut rng);
        assert!(!hier.levels.is_empty());
        let coarsest = &hier.levels.last().unwrap().coarse;
        assert!(coarsest.num_vertices() <= 40, "coarsest {}", coarsest.num_vertices());
        // Weight conservation through the whole hierarchy.
        assert!((coarsest.total_vertex_weight() - 144.0).abs() < 1e-9);
    }

    #[test]
    fn projection_roundtrip() {
        let h = crate::tests::grid_hypergraph(8, 8);
        let fixed = FixedAssignment::free(64);
        let mut rng = StdRng::seed_from_u64(6);
        let hier = coarsen_to(&h, &fixed, 10, &CoarseningConfig::default(), &mut rng);
        let coarsest = hier
            .levels
            .last()
            .map(|l| l.coarse.clone())
            .unwrap_or_else(|| h.clone());
        // Assign coarse vertices alternately and project.
        let cpart: Vec<usize> = (0..coarsest.num_vertices()).map(|v| v % 2).collect();
        let fpart = hier.project_to_finest(&cpart);
        assert_eq!(fpart.len(), 64);
        // Every fine vertex inherits its coarse vertex's part.
        let mut cur: Vec<usize> = fpart.clone();
        for lvl in &hier.levels {
            let mut coarse_seen: Vec<Option<usize>> = vec![None; lvl.coarse.num_vertices()];
            for (v, &c) in lvl.fine_to_coarse.iter().enumerate() {
                match coarse_seen[c] {
                    None => coarse_seen[c] = Some(cur[v]),
                    Some(p) => assert_eq!(p, cur[v], "siblings disagree"),
                }
            }
            cur = coarse_seen.into_iter().map(Option::unwrap).collect();
        }
        assert_eq!(cur, cpart);
    }

    #[test]
    fn stops_on_unsuccessful_coarsening() {
        // A hypergraph with no nets can never match: zero levels.
        let h = Hypergraph::from_nets_unit(50, &[]);
        let fixed = FixedAssignment::free(50);
        let mut rng = StdRng::seed_from_u64(7);
        let hier = coarsen_to(&h, &fixed, 10, &CoarseningConfig::default(), &mut rng);
        assert!(hier.levels.is_empty());
    }
}
