//! Partitioner configuration.

/// How the k-way partition is produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Scheme {
    /// Repeated bisection with fixed-part relabeling (Section 4.4).
    /// Zoltan's approach; the default.
    #[default]
    RecursiveBisection,
    /// Direct k-way multilevel V-cycle.
    DirectKway,
}

/// Coarsening-phase parameters (Section 4.1).
#[derive(Clone, Debug)]
pub struct CoarseningConfig {
    /// Stop coarsening once the hypergraph has at most
    /// `coarse_to_factor * k` vertices (the paper suggests `2k`; a larger
    /// factor gives the coarse partitioner more room).
    pub coarse_to_factor: usize,
    /// Hard floor on coarse size regardless of `k`.
    pub min_coarse_vertices: usize,
    /// Abort coarsening when a level shrinks the vertex count by less
    /// than this fraction (the paper's "typically 10%" threshold:
    /// `0.10`).
    pub min_reduction: f64,
    /// Safety cap on the number of levels.
    pub max_levels: usize,
    /// Scale each net's contribution to the inner product by
    /// `1/(|n|-1)` (PaToH-style heavy connectivity). Ablation toggle.
    pub scaled_ipm: bool,
    /// Nets with more pins than this are skipped when computing match
    /// scores: huge nets make IPM quadratic and carry little similarity
    /// signal (standard practice in PaToH/hMETIS/Zoltan).
    pub max_net_size_for_matching: usize,
    /// Parallel matching only: restrict each rank's candidates to
    /// rank-local partners, skipping the global candidate broadcast and
    /// best-match reduction. This is the speedup the paper proposes as
    /// future work ("using local IPM instead of global IPM") — faster,
    /// possibly slightly lower quality. Ignored by the serial matcher.
    pub local_ipm: bool,
}

impl Default for CoarseningConfig {
    fn default() -> Self {
        CoarseningConfig {
            coarse_to_factor: 20,
            min_coarse_vertices: 80,
            min_reduction: 0.10,
            max_levels: 40,
            scaled_ipm: true,
            max_net_size_for_matching: 300,
            local_ipm: false,
        }
    }
}

/// Coarse-partitioning parameters (Section 4.2).
#[derive(Clone, Debug)]
pub struct InitialConfig {
    /// Number of randomized greedy-hypergraph-growing attempts; the best
    /// (by cut, tie-broken by balance) wins. The parallel partitioner
    /// uses one attempt per rank instead.
    pub num_attempts: usize,
}

impl Default for InitialConfig {
    fn default() -> Self {
        InitialConfig { num_attempts: 8 }
    }
}

/// Refinement-phase parameters (Section 4.3).
#[derive(Clone, Debug)]
pub struct RefinementConfig {
    /// Maximum FM pass-pairs per level; passes stop early when a pass
    /// yields no improvement.
    pub max_passes: usize,
    /// Stop a pass after this many consecutive non-improving moves
    /// (limits tail wandering; `0` disables the limit).
    pub max_negative_streak: usize,
    /// Objective the FM gains optimize. The paper uses connectivity-1
    /// (Eq. (2)), which models true communication volume; cut-net is
    /// offered for VLSI-style workloads (PaToH supports both).
    pub metric: dlb_hypergraph::metrics::CutMetric,
}

impl Default for RefinementConfig {
    fn default() -> Self {
        RefinementConfig {
            max_passes: 4,
            max_negative_streak: 200,
            metric: dlb_hypergraph::metrics::CutMetric::Connectivity,
        }
    }
}

/// Distributed-memory execution parameters (DESIGN.md §9).
#[derive(Clone, Debug)]
pub struct DistConfig {
    /// Route the parallel V-cycle through the memory-scalable
    /// distributed driver: pin storage is block-distributed across
    /// ranks (owner/ghost layout) instead of replicated. Results are
    /// bit-identical to the replicated driver at any rank count.
    pub distributed: bool,
    /// Once the (distributed) hypergraph has at most this many
    /// vertices, it is gathered onto every rank and the remaining
    /// levels run the replicated code paths. Coarse hypergraphs are
    /// small, so this trades negligible memory for cheaper, local
    /// coarse-level work.
    pub gather_threshold: usize,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig { distributed: false, gather_threshold: 1024 }
    }
}

/// Top-level partitioner configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Allowed imbalance ε of Eq. (1): every part must satisfy
    /// `W_p ≤ (1+ε) W_avg`.
    pub epsilon: f64,
    /// RNG seed; equal seeds give identical partitions.
    pub seed: u64,
    /// K-way scheme.
    pub scheme: Scheme,
    /// Coarsening parameters.
    pub coarsening: CoarseningConfig,
    /// Coarse-partitioning parameters.
    pub initial: InitialConfig,
    /// Refinement parameters.
    pub refinement: RefinementConfig,
    /// Total V-cycles. The first builds the partition from scratch;
    /// each additional cycle re-coarsens *within* the current parts
    /// (keeping the partition representable at every level) and refines
    /// the projection — PaToH/Zoltan's iterated-V-cycle quality knob.
    /// The result of an extra cycle is kept only if it improves the cut.
    pub num_vcycles: usize,
    /// Shared-memory worker threads for the pipeline kernels. `0` means
    /// auto: the `DLB_THREADS` environment variable if set, else
    /// [`std::thread::available_parallelism`]. Any value produces
    /// bit-identical partitions (deterministic chunked reduction); `1`
    /// runs the exact serial code path.
    pub threads: usize,
    /// Distributed-memory execution parameters.
    pub dist: DistConfig,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            epsilon: 0.05,
            seed: 0,
            scheme: Scheme::default(),
            coarsening: CoarseningConfig::default(),
            initial: InitialConfig::default(),
            refinement: RefinementConfig::default(),
            num_vcycles: 1,
            threads: 0,
            dist: DistConfig::default(),
        }
    }
}

impl Config {
    /// The default configuration with a specific seed.
    pub fn seeded(seed: u64) -> Self {
        Config { seed, ..Config::default() }
    }
}

pub use dlb_hypergraph::balance::PartTargets;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_parameters() {
        let c = Config::default();
        assert_eq!(c.scheme, Scheme::RecursiveBisection);
        assert!((c.coarsening.min_reduction - 0.10).abs() < 1e-12);
        assert!(c.epsilon > 0.0);
    }

    #[test]
    fn seeded_only_changes_seed() {
        let c = Config::seeded(99);
        assert_eq!(c.seed, 99);
        assert_eq!(c.epsilon, Config::default().epsilon);
    }
}
