//! Partitioner configuration.

/// How the k-way partition is produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Scheme {
    /// Repeated bisection with fixed-part relabeling (Section 4.4).
    /// Zoltan's approach; the default.
    #[default]
    RecursiveBisection,
    /// Direct k-way multilevel V-cycle.
    DirectKway,
}

/// Reproducibility contract of the shared-memory parallel kernels.
///
/// The pipeline's kernels are parallelized two ways. Under
/// [`Determinism::Strict`] every reduction follows the chunked-reduction
/// rule (per-chunk results combined in ascending chunk order) and every
/// order-sensitive decision — greedy matching selection above all — runs
/// serially, so the partition is **bit-identical at any thread count**.
/// Under [`Determinism::Fast`] the matcher pairs vertices concurrently
/// with CAS on a shared mate array (deterministic tie-breaking by vertex
/// id within each candidate list), dropping the serial selection
/// barrier; the outcome depends on thread scheduling, so runs are not
/// bitwise-reproducible, but quality is bounded instead: the cut stays
/// within [`Config::fast_cut_factor`] of a Strict run and the imbalance
/// cap ε is enforced exactly as in Strict.
///
/// `Fast` with an effective thread count of 1 dispatches to the exact
/// Strict code path, so `Fast` at one thread *equals* Strict. The SPMD
/// (multi-rank) drivers always run the Strict kernels — their
/// collectives rely on rank-identical intermediate state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Determinism {
    /// Bit-identical results at any thread count (the default).
    #[default]
    Strict,
    /// Scheduling-dependent results with bounded quality; faster at
    /// high thread counts because matching runs fully concurrently.
    Fast,
}

/// Coarsening-phase parameters (Section 4.1).
#[derive(Clone, Debug)]
pub struct CoarseningConfig {
    /// Stop coarsening once the hypergraph has at most
    /// `coarse_to_factor * k` vertices (the paper suggests `2k`; a larger
    /// factor gives the coarse partitioner more room).
    pub coarse_to_factor: usize,
    /// Hard floor on coarse size regardless of `k`.
    pub min_coarse_vertices: usize,
    /// Abort coarsening when a level shrinks the vertex count by less
    /// than this fraction (the paper's "typically 10%" threshold:
    /// `0.10`).
    pub min_reduction: f64,
    /// Safety cap on the number of levels.
    pub max_levels: usize,
    /// Scale each net's contribution to the inner product by
    /// `1/(|n|-1)` (PaToH-style heavy connectivity). Ablation toggle.
    pub scaled_ipm: bool,
    /// Nets with more pins than this are skipped when computing match
    /// scores: huge nets make IPM quadratic and carry little similarity
    /// signal (standard practice in PaToH/hMETIS/Zoltan).
    pub max_net_size_for_matching: usize,
    /// Parallel matching only: restrict each rank's candidates to
    /// rank-local partners, skipping the global candidate broadcast and
    /// best-match reduction. This is the speedup the paper proposes as
    /// future work ("using local IPM instead of global IPM") — faster,
    /// possibly slightly lower quality. Ignored by the serial matcher.
    pub local_ipm: bool,
}

impl Default for CoarseningConfig {
    fn default() -> Self {
        CoarseningConfig {
            coarse_to_factor: 20,
            min_coarse_vertices: 80,
            min_reduction: 0.10,
            max_levels: 40,
            scaled_ipm: true,
            max_net_size_for_matching: 300,
            local_ipm: false,
        }
    }
}

/// Coarse-partitioning parameters (Section 4.2).
#[derive(Clone, Debug)]
pub struct InitialConfig {
    /// Number of randomized greedy-hypergraph-growing attempts; the best
    /// (by cut, tie-broken by balance) wins. The parallel partitioner
    /// uses one attempt per rank instead.
    pub num_attempts: usize,
}

impl Default for InitialConfig {
    fn default() -> Self {
        InitialConfig { num_attempts: 8 }
    }
}

/// Refinement-phase parameters (Section 4.3).
#[derive(Clone, Debug)]
pub struct RefinementConfig {
    /// Maximum FM pass-pairs per level; passes stop early when a pass
    /// yields no improvement.
    pub max_passes: usize,
    /// Stop a pass after this many consecutive non-improving moves
    /// (limits tail wandering; `0` disables the limit).
    pub max_negative_streak: usize,
    /// Objective the FM gains optimize. The paper uses connectivity-1
    /// (Eq. (2)), which models true communication volume; cut-net is
    /// offered for VLSI-style workloads (PaToH supports both).
    pub metric: dlb_hypergraph::metrics::CutMetric,
}

impl Default for RefinementConfig {
    fn default() -> Self {
        RefinementConfig {
            max_passes: 4,
            max_negative_streak: 200,
            metric: dlb_hypergraph::metrics::CutMetric::Connectivity,
        }
    }
}

/// Distributed-memory execution parameters (DESIGN.md §9).
#[derive(Clone, Debug)]
pub struct DistConfig {
    /// Route the parallel V-cycle through the memory-scalable
    /// distributed driver: pin storage is block-distributed across
    /// ranks (owner/ghost layout) instead of replicated. Results are
    /// bit-identical to the replicated driver at any rank count.
    pub distributed: bool,
    /// Once the (distributed) hypergraph has at most this many
    /// vertices, it is gathered onto every rank and the remaining
    /// levels run the replicated code paths. Coarse hypergraphs are
    /// small, so this trades negligible memory for cheaper, local
    /// coarse-level work.
    pub gather_threshold: usize,
    /// Simulated SPMD ranks for drivers that spawn their own world
    /// (e.g. the CLI). `1` = serial. Library entry points that take a
    /// `Comm` use the communicator's size instead.
    pub ranks: usize,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig { distributed: false, gather_threshold: 1024, ranks: 1 }
    }
}

/// Top-level partitioner configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Allowed imbalance ε of Eq. (1): every part must satisfy
    /// `W_p ≤ (1+ε) W_avg`.
    pub epsilon: f64,
    /// RNG seed; equal seeds give identical partitions.
    pub seed: u64,
    /// K-way scheme.
    pub scheme: Scheme,
    /// Coarsening parameters.
    pub coarsening: CoarseningConfig,
    /// Coarse-partitioning parameters.
    pub initial: InitialConfig,
    /// Refinement parameters.
    pub refinement: RefinementConfig,
    /// Total V-cycles. The first builds the partition from scratch;
    /// each additional cycle re-coarsens *within* the current parts
    /// (keeping the partition representable at every level) and refines
    /// the projection — PaToH/Zoltan's iterated-V-cycle quality knob.
    /// The result of an extra cycle is kept only if it improves the cut.
    pub num_vcycles: usize,
    /// Shared-memory worker threads for the pipeline kernels. `0` means
    /// auto: the `DLB_THREADS` environment variable if set, else
    /// [`std::thread::available_parallelism`]. Any value produces
    /// bit-identical partitions (deterministic chunked reduction); `1`
    /// runs the exact serial code path.
    pub threads: usize,
    /// Reproducibility contract for the shared-memory kernels (see
    /// [`Determinism`]). `Strict` — the default — keeps results
    /// bit-identical at any thread count; `Fast` trades that for
    /// concurrent matching with quality bounds.
    pub determinism: Determinism,
    /// Quality bound asserted by the Fast-mode benchmarks and tests:
    /// a Fast run's cut must stay within this factor of the Strict cut
    /// on the same input (`1.1` = within 10%). The partitioner itself
    /// never reads it — it parameterizes the Fast-mode contract checks.
    pub fast_cut_factor: f64,
    /// Allow [`crate::refine_partition_fixed`] to seed from a caller
    /// partition and run refine-only (part-restricted) V-cycles instead
    /// of the full coarsen→initial→refine pipeline. When `false` the
    /// warm entry falls back to the full pipeline, so a disabled knob
    /// reproduces today's behavior bit for bit.
    pub warm_start: bool,
    /// Distributed-memory execution parameters.
    pub dist: DistConfig,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            epsilon: 0.05,
            seed: 0,
            scheme: Scheme::default(),
            coarsening: CoarseningConfig::default(),
            initial: InitialConfig::default(),
            refinement: RefinementConfig::default(),
            num_vcycles: 1,
            threads: 0,
            determinism: Determinism::default(),
            fast_cut_factor: 1.1,
            warm_start: false,
            dist: DistConfig::default(),
        }
    }
}

impl Config {
    /// The default configuration with a specific seed.
    pub fn seeded(seed: u64) -> Self {
        Config { seed, ..Config::default() }
    }

    /// A validating builder over the default configuration. Prefer this
    /// at API boundaries (CLI, services): invalid knob combinations come
    /// back as a [`ConfigError`] instead of a panic deep inside the
    /// partitioning drivers.
    pub fn builder() -> ConfigBuilder {
        ConfigBuilder { cfg: Config::default(), k: None }
    }
}

/// A rejected [`ConfigBuilder`] knob combination.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// `k < 2`: partitioning into fewer than two parts is a no-op the
    /// drivers are not meant for.
    InvalidK(usize),
    /// `ranks == 0`: an SPMD world needs at least one rank (the SPMD
    /// driver would otherwise panic on world construction).
    ZeroRanks,
    /// `gather_threshold == 0`: the distributed driver could then never
    /// gather, and degenerate coarse hypergraphs would stay distributed.
    ZeroGatherThreshold,
    /// `epsilon` must be positive and finite (Eq. (1) is vacuous or
    /// unsatisfiable otherwise).
    InvalidEpsilon(f64),
    /// `num_attempts == 0`: coarse partitioning needs at least one
    /// greedy-growing attempt.
    ZeroAttempts,
    /// `num_vcycles == 0`: the first V-cycle builds the partition, so at
    /// least one is required.
    ZeroVcycles,
    /// `fast_cut_factor < 1` or non-finite: the Fast-mode quality bound
    /// is relative to Strict, so a factor below 1 is unsatisfiable.
    InvalidFastCutFactor(f64),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::InvalidK(k) => write!(f, "k must be at least 2, got {k}"),
            ConfigError::ZeroRanks => write!(f, "ranks must be at least 1"),
            ConfigError::ZeroGatherThreshold => {
                write!(f, "gather-threshold must be at least 1")
            }
            ConfigError::InvalidEpsilon(e) => {
                write!(f, "epsilon must be positive and finite, got {e}")
            }
            ConfigError::ZeroAttempts => write!(f, "initial attempts must be at least 1"),
            ConfigError::ZeroVcycles => write!(f, "num_vcycles must be at least 1"),
            ConfigError::InvalidFastCutFactor(x) => {
                write!(f, "fast-cut-factor must be finite and at least 1, got {x}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validating builder for [`Config`] (see [`Config::builder`]).
///
/// Unifies the top-level knobs, the [`DistConfig`] sub-config, and the
/// `threads`/`DLB_THREADS` worker-count resolution behind one checked
/// constructor:
///
/// ```
/// use dlb_partitioner::config::{Config, ConfigError};
///
/// let cfg = Config::builder().k(4).epsilon(0.03).ranks(2).build().unwrap();
/// assert_eq!(cfg.dist.ranks, 2);
/// assert_eq!(Config::builder().k(1).build().unwrap_err(), ConfigError::InvalidK(1));
/// assert_eq!(Config::builder().ranks(0).build().unwrap_err(), ConfigError::ZeroRanks);
/// ```
#[derive(Clone, Debug)]
pub struct ConfigBuilder {
    cfg: Config,
    k: Option<usize>,
}

impl ConfigBuilder {
    /// Part count this configuration will be used with; validated
    /// (`k >= 2`) but not stored — the partitioning calls still take `k`
    /// explicitly.
    pub fn k(mut self, k: usize) -> Self {
        self.k = Some(k);
        self
    }

    /// Allowed imbalance ε.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.cfg.epsilon = epsilon;
        self
    }

    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// K-way scheme.
    pub fn scheme(mut self, scheme: Scheme) -> Self {
        self.cfg.scheme = scheme;
        self
    }

    /// Total V-cycles (see [`Config::num_vcycles`]).
    pub fn num_vcycles(mut self, num_vcycles: usize) -> Self {
        self.cfg.num_vcycles = num_vcycles;
        self
    }

    /// Shared-memory worker threads (`0` = auto: `DLB_THREADS`, then
    /// [`std::thread::available_parallelism`]).
    pub fn threads(mut self, threads: usize) -> Self {
        self.cfg.threads = threads;
        self
    }

    /// Reproducibility contract ([`Config::determinism`]).
    pub fn determinism(mut self, determinism: Determinism) -> Self {
        self.cfg.determinism = determinism;
        self
    }

    /// Fast-mode cut bound relative to Strict
    /// ([`Config::fast_cut_factor`]).
    pub fn fast_cut_factor(mut self, factor: f64) -> Self {
        self.cfg.fast_cut_factor = factor;
        self
    }

    /// Enable warm-started refine-only partitioning
    /// ([`Config::warm_start`]).
    pub fn warm_start(mut self, on: bool) -> Self {
        self.cfg.warm_start = on;
        self
    }

    /// Simulated SPMD ranks ([`DistConfig::ranks`]).
    pub fn ranks(mut self, ranks: usize) -> Self {
        self.cfg.dist.ranks = ranks;
        self
    }

    /// Route through the memory-scalable distributed driver
    /// ([`DistConfig::distributed`]).
    pub fn distributed(mut self, on: bool) -> Self {
        self.cfg.dist.distributed = on;
        self
    }

    /// Replication threshold of the distributed driver
    /// ([`DistConfig::gather_threshold`]).
    pub fn gather_threshold(mut self, gather_threshold: usize) -> Self {
        self.cfg.dist.gather_threshold = gather_threshold;
        self
    }

    /// Validates the assembled configuration.
    pub fn build(self) -> Result<Config, ConfigError> {
        if let Some(k) = self.k {
            if k < 2 {
                return Err(ConfigError::InvalidK(k));
            }
        }
        if self.cfg.dist.ranks == 0 {
            return Err(ConfigError::ZeroRanks);
        }
        if self.cfg.dist.gather_threshold == 0 {
            return Err(ConfigError::ZeroGatherThreshold);
        }
        if !(self.cfg.epsilon.is_finite() && self.cfg.epsilon > 0.0) {
            return Err(ConfigError::InvalidEpsilon(self.cfg.epsilon));
        }
        if self.cfg.initial.num_attempts == 0 {
            return Err(ConfigError::ZeroAttempts);
        }
        if self.cfg.num_vcycles == 0 {
            return Err(ConfigError::ZeroVcycles);
        }
        if !(self.cfg.fast_cut_factor.is_finite() && self.cfg.fast_cut_factor >= 1.0) {
            return Err(ConfigError::InvalidFastCutFactor(self.cfg.fast_cut_factor));
        }
        Ok(self.cfg)
    }
}

pub use dlb_hypergraph::balance::PartTargets;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_parameters() {
        let c = Config::default();
        assert_eq!(c.scheme, Scheme::RecursiveBisection);
        assert!((c.coarsening.min_reduction - 0.10).abs() < 1e-12);
        assert!(c.epsilon > 0.0);
    }

    #[test]
    fn seeded_only_changes_seed() {
        let c = Config::seeded(99);
        assert_eq!(c.seed, 99);
        assert_eq!(c.epsilon, Config::default().epsilon);
    }

    #[test]
    fn builder_accepts_valid_combinations() {
        let c = Config::builder()
            .k(8)
            .epsilon(0.03)
            .seed(7)
            .threads(2)
            .ranks(4)
            .distributed(true)
            .gather_threshold(256)
            .build()
            .unwrap();
        assert_eq!(c.seed, 7);
        assert_eq!(c.threads, 2);
        assert_eq!(c.dist.ranks, 4);
        assert!(c.dist.distributed);
        assert_eq!(c.dist.gather_threshold, 256);
    }

    #[test]
    fn builder_rejects_invalid_knobs() {
        assert_eq!(Config::builder().k(0).build().unwrap_err(), ConfigError::InvalidK(0));
        assert_eq!(Config::builder().k(1).build().unwrap_err(), ConfigError::InvalidK(1));
        assert_eq!(Config::builder().ranks(0).build().unwrap_err(), ConfigError::ZeroRanks);
        assert_eq!(
            Config::builder().gather_threshold(0).build().unwrap_err(),
            ConfigError::ZeroGatherThreshold
        );
        assert_eq!(
            Config::builder().epsilon(0.0).build().unwrap_err(),
            ConfigError::InvalidEpsilon(0.0)
        );
        assert!(matches!(
            Config::builder().epsilon(f64::NAN).build().unwrap_err(),
            ConfigError::InvalidEpsilon(e) if e.is_nan()
        ));
        assert_eq!(
            Config::builder().num_vcycles(0).build().unwrap_err(),
            ConfigError::ZeroVcycles
        );
    }

    #[test]
    fn determinism_defaults_to_strict() {
        assert_eq!(Config::default().determinism, Determinism::Strict);
        assert!((Config::default().fast_cut_factor - 1.1).abs() < 1e-12);
        let c = Config::builder()
            .determinism(Determinism::Fast)
            .fast_cut_factor(1.25)
            .build()
            .unwrap();
        assert_eq!(c.determinism, Determinism::Fast);
        assert!((c.fast_cut_factor - 1.25).abs() < 1e-12);
        assert_eq!(
            Config::builder().fast_cut_factor(0.9).build().unwrap_err(),
            ConfigError::InvalidFastCutFactor(0.9)
        );
        assert!(matches!(
            Config::builder().fast_cut_factor(f64::INFINITY).build().unwrap_err(),
            ConfigError::InvalidFastCutFactor(_)
        ));
    }

    #[test]
    fn error_messages_are_actionable() {
        assert!(ConfigError::InvalidK(1).to_string().contains("at least 2"));
        assert!(ConfigError::ZeroRanks.to_string().contains("at least 1"));
    }
}
