//! Partitioner configuration.

/// How the k-way partition is produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Scheme {
    /// Repeated bisection with fixed-part relabeling (Section 4.4).
    /// Zoltan's approach; the default.
    #[default]
    RecursiveBisection,
    /// Direct k-way multilevel V-cycle.
    DirectKway,
}

/// Reproducibility contract of the shared-memory parallel kernels.
///
/// The pipeline's kernels are parallelized two ways. Under
/// [`Determinism::Strict`] every reduction follows the chunked-reduction
/// rule (per-chunk results combined in ascending chunk order) and every
/// order-sensitive decision — greedy matching selection above all — runs
/// serially, so the partition is **bit-identical at any thread count**.
/// Under [`Determinism::Fast`] the matcher pairs vertices concurrently
/// with CAS on a shared mate array (deterministic tie-breaking by vertex
/// id within each candidate list), dropping the serial selection
/// barrier; the outcome depends on thread scheduling, so runs are not
/// bitwise-reproducible, but quality is bounded instead: the cut stays
/// within [`Config::fast_cut_factor`] of a Strict run and the imbalance
/// cap ε is enforced exactly as in Strict.
///
/// `Fast` with an effective thread count of 1 dispatches to the exact
/// Strict code path, so `Fast` at one thread *equals* Strict. The SPMD
/// (multi-rank) drivers always run the Strict kernels — their
/// collectives rely on rank-identical intermediate state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Determinism {
    /// Bit-identical results at any thread count (the default).
    #[default]
    Strict,
    /// Scheduling-dependent results with bounded quality; faster at
    /// high thread counts because matching runs fully concurrently.
    Fast,
}

/// Coarsening-phase parameters (Section 4.1).
#[derive(Clone, Debug)]
pub struct CoarseningConfig {
    /// Stop coarsening once the hypergraph has at most
    /// `coarse_to_factor * k` vertices (the paper suggests `2k`; a larger
    /// factor gives the coarse partitioner more room).
    pub coarse_to_factor: usize,
    /// Hard floor on coarse size regardless of `k`.
    pub min_coarse_vertices: usize,
    /// Abort coarsening when a level shrinks the vertex count by less
    /// than this fraction (the paper's "typically 10%" threshold:
    /// `0.10`).
    pub min_reduction: f64,
    /// Safety cap on the number of levels.
    pub max_levels: usize,
    /// Scale each net's contribution to the inner product by
    /// `1/(|n|-1)` (PaToH-style heavy connectivity). Ablation toggle.
    pub scaled_ipm: bool,
    /// Nets with more pins than this are skipped when computing match
    /// scores: huge nets make IPM quadratic and carry little similarity
    /// signal (standard practice in PaToH/hMETIS/Zoltan).
    pub max_net_size_for_matching: usize,
    /// Parallel matching only: restrict each rank's candidates to
    /// rank-local partners, skipping the global candidate broadcast and
    /// best-match reduction. This is the speedup the paper proposes as
    /// future work ("using local IPM instead of global IPM") — faster,
    /// possibly slightly lower quality. Ignored by the serial matcher.
    pub local_ipm: bool,
}

impl Default for CoarseningConfig {
    fn default() -> Self {
        CoarseningConfig {
            coarse_to_factor: 20,
            min_coarse_vertices: 80,
            min_reduction: 0.10,
            max_levels: 40,
            scaled_ipm: true,
            max_net_size_for_matching: 300,
            local_ipm: false,
        }
    }
}

/// Coarse-partitioning parameters (Section 4.2).
#[derive(Clone, Debug)]
pub struct InitialConfig {
    /// Number of randomized greedy-hypergraph-growing attempts; the best
    /// (by cut, tie-broken by balance) wins. The parallel partitioner
    /// uses one attempt per rank instead.
    pub num_attempts: usize,
}

impl Default for InitialConfig {
    fn default() -> Self {
        InitialConfig { num_attempts: 8 }
    }
}

/// Refinement-phase parameters (Section 4.3).
#[derive(Clone, Debug)]
pub struct RefinementConfig {
    /// Maximum FM pass-pairs per level; passes stop early when a pass
    /// yields no improvement.
    pub max_passes: usize,
    /// Stop a pass after this many consecutive non-improving moves
    /// (limits tail wandering; `0` disables the limit).
    pub max_negative_streak: usize,
    /// Objective the FM gains optimize. The paper uses connectivity-1
    /// (Eq. (2)), which models true communication volume; cut-net is
    /// offered for VLSI-style workloads (PaToH supports both).
    pub metric: dlb_hypergraph::metrics::CutMetric,
}

impl Default for RefinementConfig {
    fn default() -> Self {
        RefinementConfig {
            max_passes: 4,
            max_negative_streak: 200,
            metric: dlb_hypergraph::metrics::CutMetric::Connectivity,
        }
    }
}

/// Distributed-memory execution parameters (DESIGN.md §9).
#[derive(Clone, Debug)]
pub struct DistConfig {
    /// Route the parallel V-cycle through the memory-scalable
    /// distributed driver: pin storage is block-distributed across
    /// ranks (owner/ghost layout) instead of replicated. Results are
    /// bit-identical to the replicated driver at any rank count.
    pub distributed: bool,
    /// Once the (distributed) hypergraph has at most this many
    /// vertices, it is gathered onto every rank and the remaining
    /// levels run the replicated code paths. Coarse hypergraphs are
    /// small, so this trades negligible memory for cheaper, local
    /// coarse-level work.
    pub gather_threshold: usize,
    /// Simulated SPMD ranks for drivers that spawn their own world
    /// (e.g. the CLI). `1` = serial. Library entry points that take a
    /// `Comm` use the communicator's size instead.
    pub ranks: usize,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig { distributed: false, gather_threshold: 1024, ranks: 1 }
    }
}

/// Top-level partitioner configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Allowed imbalance ε of Eq. (1): every part must satisfy
    /// `W_p ≤ (1+ε) W_avg`. With multi-constraint loads this is the
    /// primary (constraint-0) tolerance.
    pub epsilon: f64,
    /// Tolerances for the auxiliary load constraints `1..arity`
    /// (`aux_epsilons[c-1]` for constraint `c`). Empty in the scalar
    /// pipeline. Constraints beyond this list fall back to `epsilon`.
    pub aux_epsilons: Vec<f64>,
    /// Per-part capacity vectors for heterogeneous ranks:
    /// `part_capacities[p][c]` is part `p`'s capacity share of
    /// constraint `c`. Targets become proportional to the capacity
    /// column instead of uniform. `None` (the default) keeps uniform
    /// targets. Honored by the serial recursive-bisection and
    /// direct-k-way drivers; the SPMD drivers support auxiliary
    /// epsilons but not per-part capacities.
    pub part_capacities: Option<Vec<Vec<f64>>>,
    /// RNG seed; equal seeds give identical partitions.
    pub seed: u64,
    /// K-way scheme.
    pub scheme: Scheme,
    /// Coarsening parameters.
    pub coarsening: CoarseningConfig,
    /// Coarse-partitioning parameters.
    pub initial: InitialConfig,
    /// Refinement parameters.
    pub refinement: RefinementConfig,
    /// Total V-cycles. The first builds the partition from scratch;
    /// each additional cycle re-coarsens *within* the current parts
    /// (keeping the partition representable at every level) and refines
    /// the projection — PaToH/Zoltan's iterated-V-cycle quality knob.
    /// The result of an extra cycle is kept only if it improves the cut.
    pub num_vcycles: usize,
    /// Shared-memory worker threads for the pipeline kernels. `0` means
    /// auto: the `DLB_THREADS` environment variable if set, else
    /// [`std::thread::available_parallelism`]. Any value produces
    /// bit-identical partitions (deterministic chunked reduction); `1`
    /// runs the exact serial code path.
    pub threads: usize,
    /// Reproducibility contract for the shared-memory kernels (see
    /// [`Determinism`]). `Strict` — the default — keeps results
    /// bit-identical at any thread count; `Fast` trades that for
    /// concurrent matching with quality bounds.
    pub determinism: Determinism,
    /// Quality bound asserted by the Fast-mode benchmarks and tests:
    /// a Fast run's cut must stay within this factor of the Strict cut
    /// on the same input (`1.1` = within 10%). The partitioner itself
    /// never reads it — it parameterizes the Fast-mode contract checks.
    pub fast_cut_factor: f64,
    /// Allow [`crate::refine_partition_fixed`] to seed from a caller
    /// partition and run refine-only (part-restricted) V-cycles instead
    /// of the full coarsen→initial→refine pipeline. When `false` the
    /// warm entry falls back to the full pipeline, so a disabled knob
    /// reproduces today's behavior bit for bit.
    pub warm_start: bool,
    /// Distributed-memory execution parameters.
    pub dist: DistConfig,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            epsilon: 0.05,
            aux_epsilons: Vec::new(),
            part_capacities: None,
            seed: 0,
            scheme: Scheme::default(),
            coarsening: CoarseningConfig::default(),
            initial: InitialConfig::default(),
            refinement: RefinementConfig::default(),
            num_vcycles: 1,
            threads: 0,
            determinism: Determinism::default(),
            fast_cut_factor: 1.1,
            warm_start: false,
            dist: DistConfig::default(),
        }
    }
}

impl Config {
    /// The default configuration with a specific seed.
    pub fn seeded(seed: u64) -> Self {
        Config { seed, ..Config::default() }
    }

    /// Number of balance constraints this configuration specifies
    /// tolerances for (1 + auxiliary epsilons).
    pub fn arity(&self) -> usize {
        1 + self.aux_epsilons.len()
    }

    /// The tolerance of constraint `c` (0 = primary). Constraints with
    /// no explicit auxiliary epsilon inherit the primary `epsilon`.
    pub fn epsilon_for(&self, c: usize) -> f64 {
        if c == 0 {
            self.epsilon
        } else {
            self.aux_epsilons.get(c - 1).copied().unwrap_or(self.epsilon)
        }
    }

    /// A validating builder over the default configuration. Prefer this
    /// at API boundaries (CLI, services): invalid knob combinations come
    /// back as a [`ConfigError`] instead of a panic deep inside the
    /// partitioning drivers.
    pub fn builder() -> ConfigBuilder {
        ConfigBuilder { cfg: Config::default(), k: None }
    }
}

/// A rejected [`ConfigBuilder`] knob combination.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// `k < 2`: partitioning into fewer than two parts is a no-op the
    /// drivers are not meant for.
    InvalidK(usize),
    /// `ranks == 0`: an SPMD world needs at least one rank (the SPMD
    /// driver would otherwise panic on world construction).
    ZeroRanks,
    /// `gather_threshold == 0`: the distributed driver could then never
    /// gather, and degenerate coarse hypergraphs would stay distributed.
    ZeroGatherThreshold,
    /// `epsilon` must be positive and finite (Eq. (1) is vacuous or
    /// unsatisfiable otherwise).
    InvalidEpsilon(f64),
    /// `num_attempts == 0`: coarse partitioning needs at least one
    /// greedy-growing attempt.
    ZeroAttempts,
    /// `num_vcycles == 0`: the first V-cycle builds the partition, so at
    /// least one is required.
    ZeroVcycles,
    /// `fast_cut_factor < 1` or non-finite: the Fast-mode quality bound
    /// is relative to Strict, so a factor below 1 is unsatisfiable.
    InvalidFastCutFactor(f64),
    /// Constraint-arity mismatch: capacity rows disagree in length, or
    /// the capacity row count does not match the part count `k`.
    ArityMismatch {
        /// The arity (or part count) the rest of the configuration
        /// implies.
        expected: usize,
        /// The conflicting count actually supplied.
        got: usize,
    },
    /// A per-part capacity entry is zero, negative, or non-finite — no
    /// load could ever be placed under it.
    NonPositiveCapacity(f64),
    /// The number of epsilons (1 primary + auxiliaries) differs from the
    /// constraint arity implied by the capacity vectors.
    EpsilonCountMismatch {
        /// Epsilons supplied (primary + auxiliary).
        epsilons: usize,
        /// Constraint arity of the capacity vectors.
        arity: usize,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::InvalidK(k) => write!(f, "k must be at least 2, got {k}"),
            ConfigError::ZeroRanks => write!(f, "ranks must be at least 1"),
            ConfigError::ZeroGatherThreshold => {
                write!(f, "gather-threshold must be at least 1")
            }
            ConfigError::InvalidEpsilon(e) => {
                write!(f, "epsilon must be positive and finite, got {e}")
            }
            ConfigError::ZeroAttempts => write!(f, "initial attempts must be at least 1"),
            ConfigError::ZeroVcycles => write!(f, "num_vcycles must be at least 1"),
            ConfigError::InvalidFastCutFactor(x) => {
                write!(f, "fast-cut-factor must be finite and at least 1, got {x}")
            }
            ConfigError::ArityMismatch { expected, got } => {
                write!(f, "constraint arity mismatch: expected {expected}, got {got}")
            }
            ConfigError::NonPositiveCapacity(c) => {
                write!(f, "part capacities must be positive and finite, got {c}")
            }
            ConfigError::EpsilonCountMismatch { epsilons, arity } => {
                write!(
                    f,
                    "epsilon count ({epsilons}) must equal the constraint arity ({arity}) \
                     of the part capacities"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validating builder for [`Config`] (see [`Config::builder`]).
///
/// Unifies the top-level knobs, the [`DistConfig`] sub-config, and the
/// `threads`/`DLB_THREADS` worker-count resolution behind one checked
/// constructor:
///
/// ```
/// use dlb_partitioner::config::{Config, ConfigError};
///
/// let cfg = Config::builder().k(4).epsilon(0.03).ranks(2).build().unwrap();
/// assert_eq!(cfg.dist.ranks, 2);
/// assert_eq!(Config::builder().k(1).build().unwrap_err(), ConfigError::InvalidK(1));
/// assert_eq!(Config::builder().ranks(0).build().unwrap_err(), ConfigError::ZeroRanks);
/// ```
#[derive(Clone, Debug)]
pub struct ConfigBuilder {
    cfg: Config,
    k: Option<usize>,
}

impl ConfigBuilder {
    /// Part count this configuration will be used with; validated
    /// (`k >= 2`) but not stored — the partitioning calls still take `k`
    /// explicitly.
    pub fn k(mut self, k: usize) -> Self {
        self.k = Some(k);
        self
    }

    /// Allowed imbalance ε.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.cfg.epsilon = epsilon;
        self
    }

    /// Per-constraint imbalance tolerances: `epsilons[0]` is the primary
    /// ε, the rest become [`Config::aux_epsilons`]. An empty slice
    /// leaves the configuration unchanged.
    pub fn epsilons(mut self, epsilons: &[f64]) -> Self {
        if let Some((&first, rest)) = epsilons.split_first() {
            self.cfg.epsilon = first;
            self.cfg.aux_epsilons = rest.to_vec();
        }
        self
    }

    /// Per-part capacity vectors (`capacities[p][c]`) for heterogeneous
    /// ranks ([`Config::part_capacities`]).
    pub fn part_capacities(mut self, capacities: Vec<Vec<f64>>) -> Self {
        self.cfg.part_capacities = Some(capacities);
        self
    }

    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// K-way scheme.
    pub fn scheme(mut self, scheme: Scheme) -> Self {
        self.cfg.scheme = scheme;
        self
    }

    /// Total V-cycles (see [`Config::num_vcycles`]).
    pub fn num_vcycles(mut self, num_vcycles: usize) -> Self {
        self.cfg.num_vcycles = num_vcycles;
        self
    }

    /// Shared-memory worker threads (`0` = auto: `DLB_THREADS`, then
    /// [`std::thread::available_parallelism`]).
    pub fn threads(mut self, threads: usize) -> Self {
        self.cfg.threads = threads;
        self
    }

    /// Reproducibility contract ([`Config::determinism`]).
    pub fn determinism(mut self, determinism: Determinism) -> Self {
        self.cfg.determinism = determinism;
        self
    }

    /// Fast-mode cut bound relative to Strict
    /// ([`Config::fast_cut_factor`]).
    pub fn fast_cut_factor(mut self, factor: f64) -> Self {
        self.cfg.fast_cut_factor = factor;
        self
    }

    /// Enable warm-started refine-only partitioning
    /// ([`Config::warm_start`]).
    pub fn warm_start(mut self, on: bool) -> Self {
        self.cfg.warm_start = on;
        self
    }

    /// Simulated SPMD ranks ([`DistConfig::ranks`]).
    pub fn ranks(mut self, ranks: usize) -> Self {
        self.cfg.dist.ranks = ranks;
        self
    }

    /// Route through the memory-scalable distributed driver
    /// ([`DistConfig::distributed`]).
    pub fn distributed(mut self, on: bool) -> Self {
        self.cfg.dist.distributed = on;
        self
    }

    /// Replication threshold of the distributed driver
    /// ([`DistConfig::gather_threshold`]).
    pub fn gather_threshold(mut self, gather_threshold: usize) -> Self {
        self.cfg.dist.gather_threshold = gather_threshold;
        self
    }

    /// Validates the assembled configuration.
    pub fn build(self) -> Result<Config, ConfigError> {
        if let Some(k) = self.k {
            if k < 2 {
                return Err(ConfigError::InvalidK(k));
            }
        }
        if self.cfg.dist.ranks == 0 {
            return Err(ConfigError::ZeroRanks);
        }
        if self.cfg.dist.gather_threshold == 0 {
            return Err(ConfigError::ZeroGatherThreshold);
        }
        if !(self.cfg.epsilon.is_finite() && self.cfg.epsilon > 0.0) {
            return Err(ConfigError::InvalidEpsilon(self.cfg.epsilon));
        }
        if self.cfg.initial.num_attempts == 0 {
            return Err(ConfigError::ZeroAttempts);
        }
        if self.cfg.num_vcycles == 0 {
            return Err(ConfigError::ZeroVcycles);
        }
        if !(self.cfg.fast_cut_factor.is_finite() && self.cfg.fast_cut_factor >= 1.0) {
            return Err(ConfigError::InvalidFastCutFactor(self.cfg.fast_cut_factor));
        }
        for &e in &self.cfg.aux_epsilons {
            if !(e.is_finite() && e > 0.0) {
                return Err(ConfigError::InvalidEpsilon(e));
            }
        }
        if let Some(caps) = &self.cfg.part_capacities {
            if caps.is_empty() {
                return Err(ConfigError::ArityMismatch { expected: self.k.unwrap_or(2), got: 0 });
            }
            let arity = caps[0].len();
            if arity == 0 {
                return Err(ConfigError::ArityMismatch { expected: 1, got: 0 });
            }
            for row in caps {
                if row.len() != arity {
                    return Err(ConfigError::ArityMismatch { expected: arity, got: row.len() });
                }
                for &c in row {
                    if !(c.is_finite() && c > 0.0) {
                        return Err(ConfigError::NonPositiveCapacity(c));
                    }
                }
            }
            if let Some(k) = self.k {
                if caps.len() != k {
                    return Err(ConfigError::ArityMismatch { expected: k, got: caps.len() });
                }
            }
            let epsilons = 1 + self.cfg.aux_epsilons.len();
            if epsilons != arity {
                return Err(ConfigError::EpsilonCountMismatch { epsilons, arity });
            }
        }
        Ok(self.cfg)
    }
}

pub use dlb_hypergraph::balance::{AuxTargets, PartTargets};

/// Assembles the k-way balance targets `cfg` implies for `h`.
///
/// * Scalar hypergraph, no capacities: exactly
///   `PartTargets::uniform(h.total_vertex_weight(), k, cfg.epsilon)` —
///   the classic pipeline's targets, bit for bit.
/// * Multi-constraint hypergraph: one [`AuxTargets`] per auxiliary load
///   constraint of `h`, with tolerance [`Config::epsilon_for`].
/// * With [`Config::part_capacities`]: targets become proportional to
///   the capacity column of each constraint (`target_c[p] =
///   total_c · caps[p][c] / Σ_q caps[q][c]`). A constraint beyond the
///   capacity arity falls back to the primary capacity column.
///
/// # Panics
/// Panics if capacities are present with a row count other than `k`
/// (use [`Config::builder`] to surface this as a [`ConfigError`]).
pub fn targets_for(h: &dlb_hypergraph::Hypergraph, k: usize, cfg: &Config) -> PartTargets {
    let arity = h.load_arity();
    let col = |caps: &[Vec<f64>], c: usize| -> Vec<f64> {
        caps.iter().map(|row| row.get(c).copied().unwrap_or(row[0])).collect()
    };
    let mut targets = match &cfg.part_capacities {
        None => PartTargets::uniform(h.total_vertex_weight(), k, cfg.epsilon),
        Some(caps) => {
            assert_eq!(caps.len(), k, "part_capacities must have one row per part");
            PartTargets::proportional_f64(h.total_vertex_weight(), &col(caps, 0), cfg.epsilon)
        }
    };
    if arity > 1 {
        let aux = (1..arity)
            .map(|c| {
                let eps = cfg.epsilon_for(c);
                match &cfg.part_capacities {
                    None => AuxTargets::uniform(h.total_load(c), k, eps),
                    Some(caps) => AuxTargets::proportional(h.total_load(c), &col(caps, c), eps),
                }
            })
            .collect();
        targets = targets.with_aux(aux);
    }
    targets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_parameters() {
        let c = Config::default();
        assert_eq!(c.scheme, Scheme::RecursiveBisection);
        assert!((c.coarsening.min_reduction - 0.10).abs() < 1e-12);
        assert!(c.epsilon > 0.0);
    }

    #[test]
    fn seeded_only_changes_seed() {
        let c = Config::seeded(99);
        assert_eq!(c.seed, 99);
        assert_eq!(c.epsilon, Config::default().epsilon);
    }

    #[test]
    fn builder_accepts_valid_combinations() {
        let c = Config::builder()
            .k(8)
            .epsilon(0.03)
            .seed(7)
            .threads(2)
            .ranks(4)
            .distributed(true)
            .gather_threshold(256)
            .build()
            .unwrap();
        assert_eq!(c.seed, 7);
        assert_eq!(c.threads, 2);
        assert_eq!(c.dist.ranks, 4);
        assert!(c.dist.distributed);
        assert_eq!(c.dist.gather_threshold, 256);
    }

    #[test]
    fn builder_rejects_invalid_knobs() {
        assert_eq!(Config::builder().k(0).build().unwrap_err(), ConfigError::InvalidK(0));
        assert_eq!(Config::builder().k(1).build().unwrap_err(), ConfigError::InvalidK(1));
        assert_eq!(Config::builder().ranks(0).build().unwrap_err(), ConfigError::ZeroRanks);
        assert_eq!(
            Config::builder().gather_threshold(0).build().unwrap_err(),
            ConfigError::ZeroGatherThreshold
        );
        assert_eq!(
            Config::builder().epsilon(0.0).build().unwrap_err(),
            ConfigError::InvalidEpsilon(0.0)
        );
        assert!(matches!(
            Config::builder().epsilon(f64::NAN).build().unwrap_err(),
            ConfigError::InvalidEpsilon(e) if e.is_nan()
        ));
        assert_eq!(
            Config::builder().num_vcycles(0).build().unwrap_err(),
            ConfigError::ZeroVcycles
        );
    }

    #[test]
    fn determinism_defaults_to_strict() {
        assert_eq!(Config::default().determinism, Determinism::Strict);
        assert!((Config::default().fast_cut_factor - 1.1).abs() < 1e-12);
        let c = Config::builder()
            .determinism(Determinism::Fast)
            .fast_cut_factor(1.25)
            .build()
            .unwrap();
        assert_eq!(c.determinism, Determinism::Fast);
        assert!((c.fast_cut_factor - 1.25).abs() < 1e-12);
        assert_eq!(
            Config::builder().fast_cut_factor(0.9).build().unwrap_err(),
            ConfigError::InvalidFastCutFactor(0.9)
        );
        assert!(matches!(
            Config::builder().fast_cut_factor(f64::INFINITY).build().unwrap_err(),
            ConfigError::InvalidFastCutFactor(_)
        ));
    }

    #[test]
    fn builder_accepts_multi_constraint_knobs() {
        let c = Config::builder()
            .k(2)
            .epsilons(&[0.05, 0.10])
            .part_capacities(vec![vec![2.0, 16.0], vec![1.0, 8.0]])
            .build()
            .unwrap();
        assert_eq!(c.arity(), 2);
        assert_eq!(c.epsilon, 0.05);
        assert_eq!(c.aux_epsilons, vec![0.10]);
        assert_eq!(c.epsilon_for(0), 0.05);
        assert_eq!(c.epsilon_for(1), 0.10);
        assert_eq!(c.epsilon_for(9), 0.05); // falls back to primary
        assert_eq!(c.part_capacities.unwrap().len(), 2);
    }

    #[test]
    fn builder_rejects_multi_constraint_mismatches() {
        // Ragged capacity rows.
        assert_eq!(
            Config::builder()
                .epsilons(&[0.05, 0.05])
                .part_capacities(vec![vec![1.0, 1.0], vec![1.0]])
                .build()
                .unwrap_err(),
            ConfigError::ArityMismatch { expected: 2, got: 1 }
        );
        // Row count must match k.
        assert_eq!(
            Config::builder()
                .k(3)
                .part_capacities(vec![vec![1.0], vec![1.0]])
                .build()
                .unwrap_err(),
            ConfigError::ArityMismatch { expected: 3, got: 2 }
        );
        // Non-positive capacity.
        assert_eq!(
            Config::builder()
                .k(2)
                .part_capacities(vec![vec![1.0], vec![0.0]])
                .build()
                .unwrap_err(),
            ConfigError::NonPositiveCapacity(0.0)
        );
        // Epsilon count must equal capacity arity.
        assert_eq!(
            Config::builder()
                .k(2)
                .epsilons(&[0.05])
                .part_capacities(vec![vec![1.0, 2.0], vec![1.0, 2.0]])
                .build()
                .unwrap_err(),
            ConfigError::EpsilonCountMismatch { epsilons: 1, arity: 2 }
        );
        // Bad auxiliary epsilon.
        assert_eq!(
            Config::builder().epsilons(&[0.05, -0.1]).build().unwrap_err(),
            ConfigError::InvalidEpsilon(-0.1)
        );
    }

    #[test]
    fn error_messages_are_actionable() {
        assert!(ConfigError::InvalidK(1).to_string().contains("at least 2"));
        assert!(ConfigError::ZeroRanks.to_string().contains("at least 1"));
    }
}
