//! Recursive bisection with fixed vertices (Section 4.4).
//!
//! K-way partitioning by repeated two-way splits. At each bisection the
//! fixed-vertex information is relabeled exactly as the paper describes:
//! vertices fixed to parts `0..⌈k/2⌉` are fixed to side 0, vertices fixed
//! to parts `⌈k/2⌉..k` to side 1 — then the two sides recurse with their
//! own (shifted) fixed parts. Side weight targets are proportional to the
//! number of final parts each side will receive, and the imbalance budget
//! ε is spread geometrically across the `⌈log₂ k⌉` bisection levels so
//! the final k-way partition meets the overall Eq. (1) bound.

use dlb_hypergraph::subset::induced_subhypergraph;
use dlb_hypergraph::{parallel, Hypergraph, PartId};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::{AuxTargets, Config, PartTargets};
use crate::fixed::FixedAssignment;
use crate::kway::multilevel;
use crate::refine::RefineScratch;

/// Per-bisection imbalance tolerance so that `depth` nested bisections
/// compound to at most the overall `epsilon`.
fn per_level_epsilon(epsilon: f64, k: usize) -> f64 {
    let depth = (k.max(2) as f64).log2().ceil().max(1.0);
    (1.0 + epsilon).powf(1.0 / depth) - 1.0
}

/// Side-target context threaded through the bisection recursion:
/// per-level tolerances for every constraint, plus the per-part
/// capacity rows when the machine is heterogeneous. The scalar
/// no-capacity case carries an empty `aux_eps` and `caps: None`, and
/// `recurse` then computes exactly the targets it always has.
struct SideTargets<'a> {
    /// Per-bisection primary tolerance.
    eps: f64,
    /// Per-bisection tolerance of auxiliary constraint `c` at index
    /// `c - 1`; constraints beyond the list fall back to `eps`.
    aux_eps: Vec<f64>,
    /// Capacity rows (`caps[p][c]`) of the final parts this subtree
    /// will produce; `None` = homogeneous parts.
    caps: Option<&'a [Vec<f64>]>,
}

/// Partitions `h` into `k` parts by recursive bisection, honoring
/// `fixed`.
pub fn partition_recursive(
    h: &Hypergraph,
    k: usize,
    fixed: &FixedAssignment,
    cfg: &Config,
) -> Vec<PartId> {
    partition_recursive_shares(h, &vec![1; k], fixed, cfg)
}

/// Recursive bisection toward *non-uniform* part sizes: part `p` targets
/// `shares[p] / Σ shares` of the total weight (e.g. processor speeds on
/// a heterogeneous machine). Each bisection splits the share vector, so
/// the side targets compose correctly at every level.
///
/// When [`Config::part_capacities`] is set, the capacity rows override
/// `shares` for the target computation (column `c` drives constraint
/// `c`); the share vector then only fixes the part count. Auxiliary
/// load constraints of `h` get their own side targets with per-level
/// tolerances derived from [`Config::epsilon_for`].
pub fn partition_recursive_shares(
    h: &Hypergraph,
    shares: &[usize],
    fixed: &FixedAssignment,
    cfg: &Config,
) -> Vec<PartId> {
    let k = shares.len();
    assert!(k > 0, "need at least one part");
    assert!(shares.iter().all(|&s| s > 0), "shares must be positive");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let threads = parallel::resolve_threads(cfg.threads);
    let mut scratch = RefineScratch::new();
    let caps = cfg.part_capacities.as_deref();
    if let Some(c) = caps {
        assert_eq!(c.len(), k, "part_capacities must have one row per part");
    }
    let side = SideTargets {
        eps: per_level_epsilon(cfg.epsilon, k),
        aux_eps: (1..h.load_arity())
            .map(|c| per_level_epsilon(cfg.epsilon_for(c), k))
            .collect(),
        caps,
    };
    recurse(h, shares, fixed, cfg, &side, &mut rng, threads, &mut scratch)
}

#[allow(clippy::too_many_arguments)]
fn recurse(
    h: &Hypergraph,
    shares: &[usize],
    fixed: &FixedAssignment,
    cfg: &Config,
    side: &SideTargets<'_>,
    rng: &mut StdRng,
    threads: usize,
    scratch: &mut RefineScratch,
) -> Vec<PartId> {
    let k = shares.len();
    if k == 1 {
        return vec![0; h.num_vertices()];
    }
    if h.num_vertices() == 0 {
        return Vec::new();
    }

    let k0 = k.div_ceil(2);

    // Bisect with side targets proportional to the final part shares
    // (or, on a heterogeneous machine, to the capacity column sums).
    let side_fixed = fixed.bisection_sides(k0);
    let share0: usize = shares[..k0].iter().sum();
    let share1: usize = shares[k0..].iter().sum();
    let cap_sums = |caps: &[Vec<f64>], c: usize| -> [f64; 2] {
        let sum = |rows: &[Vec<f64>]| -> f64 {
            rows.iter().map(|row| row.get(c).copied().unwrap_or(row[0])).sum()
        };
        [sum(&caps[..k0]), sum(&caps[k0..])]
    };
    let mut targets = match side.caps {
        None => PartTargets::proportional(h.total_vertex_weight(), &[share0, share1], side.eps),
        Some(caps) => PartTargets::proportional_f64(
            h.total_vertex_weight(),
            &cap_sums(caps, 0),
            side.eps,
        ),
    };
    let arity = h.load_arity();
    if arity > 1 {
        let aux = (1..arity)
            .map(|c| {
                let eps = side.aux_eps.get(c - 1).copied().unwrap_or(side.eps);
                let sides = match side.caps {
                    None => [share0 as f64, share1 as f64],
                    Some(caps) => cap_sums(caps, c),
                };
                AuxTargets::proportional(h.total_load(c), &sides, eps)
            })
            .collect();
        targets = targets.with_aux(aux);
    }
    let sides = multilevel(h, &targets, &side_fixed, cfg, rng, threads, scratch);
    debug_assert_eq!(sides.len(), h.num_vertices());

    // Split into the two induced sub-hypergraphs. Cut nets survive on
    // each side restricted to that side's pins (if at least two remain),
    // the standard way recursive bisection keeps accounting for them.
    let split_span = dlb_trace::span!("rb.split", vertices = h.num_vertices(), k = k);
    let keep0: Vec<bool> = sides.iter().map(|&s| s == 0).collect();
    let keep1: Vec<bool> = sides.iter().map(|&s| s == 1).collect();
    let side0 = induced_subhypergraph(h, &keep0);
    let side1 = induced_subhypergraph(h, &keep1);
    drop(split_span);

    let fixed0 = FixedAssignment::from_options(
        &side0.to_base.iter().map(|&v| fixed.get(v)).collect::<Vec<_>>(),
    );
    let fixed1 = FixedAssignment::from_options(
        &side1
            .to_base
            .iter()
            .map(|&v| fixed.get(v).map(|p| p - k0))
            .collect::<Vec<_>>(),
    );

    let sub = |lo: usize, hi: usize| SideTargets {
        eps: side.eps,
        aux_eps: side.aux_eps.clone(),
        caps: side.caps.map(|c| &c[lo..hi]),
    };
    let side_a = sub(0, k0);
    let side_b = sub(k0, k);
    let part0 =
        recurse(&side0.hypergraph, &shares[..k0], &fixed0, cfg, &side_a, rng, threads, scratch);
    let part1 =
        recurse(&side1.hypergraph, &shares[k0..], &fixed1, cfg, &side_b, rng, threads, scratch);

    let mut part = vec![0usize; h.num_vertices()];
    for (new_v, &old_v) in side0.to_base.iter().enumerate() {
        part[old_v] = part0[new_v];
    }
    for (new_v, &old_v) in side1.to_base.iter().enumerate() {
        part[old_v] = k0 + part1[new_v];
    }
    part
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_hypergraph::metrics;

    #[test]
    fn per_level_epsilon_compounds_correctly() {
        let eps = per_level_epsilon(0.05, 8);
        // Three levels: (1+eps)^3 == 1.05.
        assert!(((1.0 + eps).powi(3) - 1.05).abs() < 1e-12);
    }

    #[test]
    fn rb_eight_way_on_grid() {
        let h = crate::tests::grid_hypergraph(16, 16);
        let fixed = FixedAssignment::free(256);
        let cfg = Config::seeded(9);
        let part = partition_recursive(&h, 8, &fixed, &cfg);
        assert!(part.iter().all(|&p| p < 8));
        let imb = metrics::imbalance(&h, &part, 8);
        assert!(imb <= 1.0 + cfg.epsilon + 0.02, "imbalance {imb}");
        // All eight parts are nonempty.
        let w = metrics::part_weights(&h, &part, 8);
        assert!(w.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn rb_fixed_relabeling_lands_vertices_in_exact_parts() {
        let h = crate::tests::grid_hypergraph(8, 8);
        let mut fixed = FixedAssignment::free(64);
        for p in 0..4 {
            fixed.fix(p * 16, p); // fix one vertex into each final part
        }
        let part = partition_recursive(&h, 4, &fixed, &Config::seeded(10));
        for p in 0..4 {
            assert_eq!(part[p * 16], p, "fixed vertex for part {p}");
        }
    }

    #[test]
    fn rb_odd_k() {
        let h = crate::tests::grid_hypergraph(9, 9);
        let fixed = FixedAssignment::free(81);
        let part = partition_recursive(&h, 3, &fixed, &Config::seeded(11));
        let w = metrics::part_weights(&h, &part, 3);
        let imb = metrics::imbalance_of_weights(&w);
        assert!(imb <= 1.12, "imbalance {imb} for k=3: {w:?}");
    }

    #[test]
    fn rb_heterogeneous_shares() {
        // A 3:1 machine: part 0 should carry ~3/4 of the weight.
        let h = crate::tests::grid_hypergraph(12, 12);
        let fixed = FixedAssignment::free(144);
        let part = partition_recursive_shares(&h, &[3, 1], &fixed, &Config::seeded(13));
        let w = metrics::part_weights(&h, &part, 2);
        assert!((w[0] - 108.0).abs() <= 10.0, "weights {w:?}");
        assert!((w[1] - 36.0).abs() <= 10.0, "weights {w:?}");
    }

    #[test]
    fn rb_shares_with_three_unequal_parts() {
        let h = crate::tests::grid_hypergraph(10, 10);
        let fixed = FixedAssignment::free(100);
        let part = partition_recursive_shares(&h, &[2, 1, 1], &fixed, &Config::seeded(14));
        let w = metrics::part_weights(&h, &part, 3);
        assert!((w[0] - 50.0).abs() <= 8.0, "weights {w:?}");
        assert!((w[1] - 25.0).abs() <= 8.0, "weights {w:?}");
        assert!((w[2] - 25.0).abs() <= 8.0, "weights {w:?}");
    }

    #[test]
    fn rb_k_exceeding_vertices_assigns_in_range() {
        let h = crate::tests::grid_hypergraph(2, 3);
        let fixed = FixedAssignment::free(6);
        let part = partition_recursive(&h, 4, &fixed, &Config::seeded(12));
        assert_eq!(part.len(), 6);
        assert!(part.iter().all(|&p| p < 4));
    }
}
