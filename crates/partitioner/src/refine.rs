//! Fiduccia–Mattheyses refinement with fixed vertices (Section 4.3).
//!
//! The refiner improves the connectivity-1 cut of a k-way assignment by
//! hill-climbing vertex moves with rollback: within a pass, boundary
//! vertices move one at a time to their best-gain feasible target part
//! (each vertex at most once per pass), the running cumulative gain is
//! tracked, and at the end the pass is rolled back to its best prefix —
//! so individual negative-gain moves are allowed as escapes from local
//! minima, but a pass never ends worse than it started. Fixed vertices
//! are never moved.
//!
//! Gains use the k-1 metric directly: moving `v` from `p` to `q` changes
//! the cut by `Σ_{n ∋ v} c_n·([σ(n,p)=1] − [σ(n,q)=0])`, where `σ(n,p)`
//! is the number of `n`'s pins in part `p`.
//!
//! With multi-constraint loads every move is additionally capped on each
//! auxiliary constraint, and a separate **greedy repair** pass
//! ([`greedy_repair`]) recovers feasibility when FM stalls: it moves the
//! highest-gain vertices out of the most-violated constraint's heaviest
//! part, accepting only moves that strictly shrink the largest relative
//! overshoot. At arity 1 neither the aux checks nor the repair pass
//! execute a single floating-point operation, so scalar runs stay
//! bitwise identical.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use dlb_hypergraph::metrics::CutMetric;
use dlb_hypergraph::{parallel, Hypergraph, PartId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use crate::config::{PartTargets, RefinementConfig};
use crate::fixed::FixedAssignment;

/// Nets larger than this do not trigger neighbor re-queues after a move;
/// their pins' gains drift slightly until popped (and are then
/// recomputed exactly). Keeps huge nets from making passes quadratic.
const MAX_NET_SIZE_FOR_UPDATES: usize = 400;

/// Chunk size for parallel FM gain seeding: a `best_move` walks all of a
/// vertex's nets, so chunks are smaller than [`parallel::DEFAULT_CHUNK`]
/// to keep workers even on skewed boundaries.
const SEED_CHUNK: usize = 1024;

/// Incrementally maintained partition state: per-net-per-part pin counts
/// and part weights.
pub struct PartitionState<'a> {
    h: &'a Hypergraph,
    k: usize,
    /// Worker threads for state builds and whole-partition scans
    /// (`cut`, `boundary_vertices`). Any value gives bit-identical
    /// results — all reductions follow the chunked-reduction rule.
    threads: usize,
    /// `sigma[j*k + p]` = number of net `j`'s pins in part `p`.
    sigma: Vec<u32>,
    /// Total vertex weight per part.
    pub weights: Vec<f64>,
    /// Per-part totals of the auxiliary load constraints, flattened as
    /// `aux_weights[(c-1)*k + p]`. Empty when the hypergraph is scalar
    /// (arity 1), so the scalar pipeline never touches it.
    pub aux_weights: Vec<f64>,
    /// Current assignment.
    pub part: Vec<PartId>,
}

impl<'a> PartitionState<'a> {
    /// Builds the state for `part` on `h`.
    pub fn new(h: &'a Hypergraph, k: usize, part: Vec<PartId>) -> Self {
        Self::new_threads(h, k, part, 1)
    }

    /// [`Self::new`] with an explicit worker-thread count. The sigma
    /// table is built per net chunk and concatenated in chunk order; the
    /// part weights are per-chunk partial sums folded in chunk order —
    /// so the state is bit-identical at every thread count.
    pub fn new_threads(h: &'a Hypergraph, k: usize, part: Vec<PartId>, threads: usize) -> Self {
        assert_eq!(part.len(), h.num_vertices());
        let threads = threads.max(1);
        // Sigma table: each chunk of nets owns the `k`-strided window of
        // the destination buffer directly — no per-chunk vectors, no
        // concatenation pass.
        let mut sigma = vec![0u32; h.num_nets() * k];
        let part_ref = &part;
        parallel::fill_chunks(
            threads,
            h.num_nets(),
            parallel::DEFAULT_CHUNK,
            k,
            &mut sigma,
            |_, range, window| {
                for j in range.clone() {
                    let base = (j - range.start) * k;
                    for &v in h.net(j) {
                        window[base + part_ref[v]] += 1;
                    }
                }
            },
        );
        // Part weights: per-chunk partial vectors live in one arena-backed
        // flat buffer (chunk i owns window i), folded in chunk order —
        // bit-identical at every thread count.
        let n_chunks = parallel::num_chunks(h.num_vertices(), parallel::DEFAULT_CHUNK);
        let mut partials = parallel::scratch_vec_filled::<f64>(n_chunks * k, 0.0);
        parallel::fill_per_chunk(
            threads,
            h.num_vertices(),
            parallel::DEFAULT_CHUNK,
            k,
            &mut partials,
            |_, range, window| {
                for v in range {
                    window[part_ref[v]] += h.vertex_weight(v);
                }
            },
        );
        let mut weights = vec![0.0f64; k];
        for local in partials.chunks(k) {
            for p in 0..k {
                weights[p] += local[p];
            }
        }
        // Auxiliary constraints are new behavior, so a serial (and hence
        // thread-count-independent) accumulation suffices; arity 1 skips
        // this entirely.
        let arity = h.load_arity();
        let mut aux_weights = Vec::new();
        if arity > 1 {
            aux_weights = vec![0.0f64; (arity - 1) * k];
            for c in 1..arity {
                let col = h.loads().constraint(c);
                let row = &mut aux_weights[(c - 1) * k..c * k];
                for (v, &p) in part.iter().enumerate() {
                    row[p] += col[v];
                }
            }
        }
        PartitionState { h, k, threads, sigma, weights, aux_weights, part }
    }

    #[inline]
    fn sigma(&self, j: usize, p: usize) -> u32 {
        self.sigma[j * self.k + p]
    }

    /// Moves `v` to part `q`, updating pin counts and weights.
    pub fn apply(&mut self, v: usize, q: PartId) {
        let p = self.part[v];
        if p == q {
            return;
        }
        for &j in self.h.vertex_nets(v) {
            self.sigma[j * self.k + p] -= 1;
            self.sigma[j * self.k + q] += 1;
        }
        let w = self.h.vertex_weight(v);
        self.weights[p] -= w;
        self.weights[q] += w;
        if !self.aux_weights.is_empty() {
            for c in 1..self.h.load_arity() {
                let l = self.h.vertex_load(v, c);
                self.aux_weights[(c - 1) * self.k + p] -= l;
                self.aux_weights[(c - 1) * self.k + q] += l;
            }
        }
        self.part[v] = q;
    }

    /// Per-part load of auxiliary constraint `c` (1-based, `c ∈ 1..arity`).
    #[inline]
    pub fn aux_weight(&self, c: usize, p: usize) -> f64 {
        self.aux_weights[(c - 1) * self.k + p]
    }

    /// True when moving `v` into `q` respects every auxiliary cap. A
    /// no-op (empty loop, no float ops) when `targets` is scalar.
    #[inline]
    pub fn aux_fits(&self, v: usize, q: PartId, targets: &PartTargets) -> bool {
        for (i, a) in targets.aux.iter().enumerate() {
            if self.aux_weights[i * self.k + q] + self.h.vertex_load(v, i + 1) > a.cap(q) {
                return false;
            }
        }
        true
    }

    /// True iff every part is within its cap on every constraint of
    /// `targets` (with a tiny slack for float noise).
    pub fn feasible(&self, targets: &PartTargets) -> bool {
        let slack = 1e-9;
        for p in 0..self.k {
            if self.weights[p] > targets.cap(p) + slack {
                return false;
            }
        }
        for (i, a) in targets.aux.iter().enumerate() {
            for p in 0..self.k {
                if self.aux_weights[i * self.k + p] > a.cap(p) + slack {
                    return false;
                }
            }
        }
        true
    }

    /// The gain (cut decrease) of moving `v` to `q` under the k-1 metric.
    pub fn gain(&self, v: usize, q: PartId) -> f64 {
        let p = self.part[v];
        if p == q {
            return 0.0;
        }
        let mut g = 0.0;
        for &j in self.h.vertex_nets(v) {
            let c = self.h.net_cost(j);
            if self.sigma(j, p) == 1 {
                g += c;
            }
            if self.sigma(j, q) == 0 {
                g -= c;
            }
        }
        g
    }

    /// The gain of moving `v` to `q` under the chosen metric. For
    /// [`CutMetric::CutNet`], a net only contributes when the move makes
    /// it entirely internal to `q` (+cost) or splits a net that was
    /// entirely internal to `p` (−cost).
    pub fn gain_metric(&self, v: usize, q: PartId, metric: CutMetric) -> f64 {
        match metric {
            CutMetric::Connectivity => self.gain(v, q),
            CutMetric::CutNet => {
                let p = self.part[v];
                if p == q {
                    return 0.0;
                }
                let mut g = 0.0;
                for &j in self.h.vertex_nets(v) {
                    let size = self.h.net_size(j) as u32;
                    let c = self.h.net_cost(j);
                    if self.sigma(j, q) == size - 1 {
                        g += c; // net becomes internal to q
                    }
                    if self.sigma(j, p) == size {
                        g -= c; // net was internal to p; move cuts it
                    }
                }
                g
            }
        }
    }

    /// The best feasible move for `v`: the highest-gain target part among
    /// the parts `v`'s nets already touch (ties → lighter part), subject
    /// to the weight cap. `scratch` must be a `k`-length pair of arrays
    /// used as a stamped accumulator.
    pub fn best_move(
        &self,
        v: usize,
        targets: &PartTargets,
        scratch: &mut MoveScratch,
    ) -> Option<(PartId, f64)> {
        let p = self.part[v];
        scratch.stamp += 1;
        let stamp = scratch.stamp;

        let mut base = 0.0; // gain component from leaving p
        let mut total = 0.0;
        for &j in self.h.vertex_nets(v) {
            let c = self.h.net_cost(j);
            total += c;
            if self.sigma(j, p) == 1 {
                base += c;
            }
            // Candidate targets: parts with pins on v's nets.
            for q in 0..self.k {
                if q != p && self.sigma(j, q) > 0 {
                    if scratch.mark[q] != stamp {
                        scratch.mark[q] = stamp;
                        scratch.present[q] = 0.0;
                        scratch.cands.push(q);
                    }
                    scratch.present[q] += c;
                }
            }
        }

        let w = self.h.vertex_weight(v);
        let mut best: Option<(PartId, f64)> = None;
        for &q in &scratch.cands {
            if self.weights[q] + w > targets.cap(q) || !self.aux_fits(v, q, targets) {
                continue;
            }
            let gain = base - (total - scratch.present[q]);
            match best {
                Some((bq, bg)) => {
                    if gain > bg + 1e-12
                        || (gain > bg - 1e-12 && self.weights[q] < self.weights[bq])
                    {
                        best = Some((q, gain));
                    }
                }
                None => best = Some((q, gain)),
            }
        }
        scratch.cands.clear();
        best
    }

    /// [`Self::best_move`] under the chosen metric (the k-1 path uses the
    /// specialized decomposition; cut-net evaluates candidates directly).
    pub fn best_move_metric(
        &self,
        v: usize,
        targets: &PartTargets,
        metric: CutMetric,
        scratch: &mut MoveScratch,
    ) -> Option<(PartId, f64)> {
        if metric == CutMetric::Connectivity {
            return self.best_move(v, targets, scratch);
        }
        let p = self.part[v];
        scratch.stamp += 1;
        let stamp = scratch.stamp;
        scratch.cands.clear();
        for &j in self.h.vertex_nets(v) {
            for q in 0..self.k {
                if q != p && self.sigma(j, q) > 0 && scratch.mark[q] != stamp {
                    scratch.mark[q] = stamp;
                    scratch.cands.push(q);
                }
            }
        }
        let w = self.h.vertex_weight(v);
        let mut best: Option<(PartId, f64)> = None;
        for &q in &scratch.cands {
            if self.weights[q] + w > targets.cap(q) || !self.aux_fits(v, q, targets) {
                continue;
            }
            let gain = self.gain_metric(v, q, metric);
            match best {
                Some((bq, bg)) => {
                    if gain > bg + 1e-12
                        || (gain > bg - 1e-12 && self.weights[q] < self.weights[bq])
                    {
                        best = Some((q, gain));
                    }
                }
                None => best = Some((q, gain)),
            }
        }
        scratch.cands.clear();
        best
    }

    /// Vertices on the cut boundary: incident to at least one net that
    /// touches more than one part.
    pub fn boundary_vertices(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.boundary_vertices_into(&mut out);
        out
    }

    /// [`Self::boundary_vertices`] into a caller-owned buffer (cleared
    /// first), so refinement passes can reuse the allocation. The
    /// expensive per-net part scan runs chunked over the nets; the cheap
    /// pin-marking pass stays serial, so the result is order-identical
    /// at every thread count.
    pub fn boundary_vertices_into(&self, out: &mut Vec<usize>) {
        // Cut-net flags straight into an arena-backed buffer: one write
        // per net, no per-chunk vectors (the buffer itself is reused
        // across passes on this thread).
        let mut cut_net = parallel::scratch_vec_filled::<bool>(self.h.num_nets(), false);
        parallel::fill_chunks(
            self.threads,
            self.h.num_nets(),
            parallel::DEFAULT_CHUNK,
            1,
            &mut cut_net,
            |_, range, window| {
                for j in range.clone() {
                    window[j - range.start] =
                        (0..self.k).filter(|&p| self.sigma(j, p) > 0).count() > 1;
                }
            },
        );
        let mut boundary = parallel::scratch_vec_filled::<bool>(self.h.num_vertices(), false);
        for (j, &is_cut) in cut_net.iter().enumerate() {
            if is_cut {
                for &v in self.h.net(j) {
                    boundary[v] = true;
                }
            }
        }
        out.clear();
        out.extend(
            boundary
                .iter()
                .enumerate()
                .filter_map(|(v, &b)| b.then_some(v)),
        );
    }

    /// Current k-1 cut computed from the maintained pin counts: per-chunk
    /// partial sums over the nets folded in chunk order (bit-identical at
    /// every thread count).
    pub fn cut(&self) -> f64 {
        parallel::sum_chunks(
            self.threads,
            self.h.num_nets(),
            parallel::DEFAULT_CHUNK,
            |range| {
                let mut cut = 0.0;
                for j in range {
                    let touched = (0..self.k).filter(|&p| self.sigma(j, p) > 0).count();
                    if touched > 1 {
                        cut += self.h.net_cost(j) * (touched - 1) as f64;
                    }
                }
                cut
            },
        )
    }
}

/// Reusable per-call scratch for [`PartitionState::best_move`].
pub struct MoveScratch {
    mark: Vec<u64>,
    present: Vec<f64>,
    cands: Vec<usize>,
    stamp: u64,
}

impl MoveScratch {
    /// Scratch for `k` parts.
    pub fn new(k: usize) -> Self {
        MoveScratch {
            mark: vec![0; k],
            present: vec![0.0; k],
            cands: Vec::new(),
            stamp: 0,
        }
    }

    /// Grows the scratch to cover `k` parts (never shrinks; the stamp
    /// counter survives, so stale marks are ignored automatically).
    pub fn ensure(&mut self, k: usize) {
        if self.mark.len() < k {
            self.mark.resize(k, 0);
            self.present.resize(k, 0.0);
        }
    }
}

/// Allocation-reusing scratch for [`refine_threads`]: the move scratch,
/// the candidate heap, and the per-pass vertex flag arrays. One instance
/// serves every level of a multilevel V-cycle (and every bisection of a
/// recursive-bisection tree), so the per-pass `O(n)` allocations of the
/// original refiner are paid once per partitioner call instead of once
/// per pass.
pub struct RefineScratch {
    mv: MoveScratch,
    heap: BinaryHeap<Cand>,
    locked: Vec<bool>,
    queued: Vec<bool>,
    applied: Vec<(usize, PartId)>,
    boundary: Vec<usize>,
}

impl RefineScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        RefineScratch {
            mv: MoveScratch::new(0),
            heap: BinaryHeap::new(),
            locked: Vec::new(),
            queued: Vec::new(),
            applied: Vec::new(),
            boundary: Vec::new(),
        }
    }

    /// Prepares the scratch for one FM pass over `n` vertices and `k`
    /// parts: clears (retaining capacity) and resizes the flag arrays.
    fn prepare_pass(&mut self, k: usize, n: usize) {
        self.mv.ensure(k);
        self.heap.clear();
        self.locked.clear();
        self.locked.resize(n, false);
        self.queued.clear();
        self.queued.resize(n, false);
        self.applied.clear();
    }
}

impl Default for RefineScratch {
    fn default() -> Self {
        Self::new()
    }
}

struct Cand {
    gain: f64,
    v: usize,
    to: PartId,
}

impl PartialEq for Cand {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Cand {}
impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Cand {
    fn cmp(&self, other: &Self) -> Ordering {
        self.gain
            .total_cmp(&other.gain)
            .then_with(|| other.v.cmp(&self.v))
    }
}

/// Restores balance greedily: while a part exceeds its cap, move the
/// cheapest (highest-gain, i.e. least cut damage) movable vertex out of
/// the most-overweight part into the part with the most spare capacity.
///
/// Needed when projection or fixed-vertex constraints leave the coarse
/// partition overweight; plain FM cannot fix imbalance because it only
/// makes cap-respecting moves.
pub(crate) fn rebalance(
    state: &mut PartitionState,
    targets: &PartTargets,
    fixed: &FixedAssignment,
    scratch: &mut MoveScratch,
) {
    dlb_trace::count(dlb_trace::Counter::RebalanceInvocations, 1);
    let n = state.h.num_vertices();
    let max_moves = 2 * n + 16;
    let total_violation = |weights: &[f64]| -> f64 {
        weights
            .iter()
            .enumerate()
            .map(|(p, &w)| (w - targets.cap(p)).max(0.0))
            .sum()
    };
    for _ in 0..max_moves {
        let violation_before = total_violation(&state.weights);
        // Most-overweight part (relative to cap).
        let over = (0..state.k)
            .filter(|&p| state.weights[p] > targets.cap(p) + 1e-9)
            .max_by(|&a, &b| {
                (state.weights[a] - targets.cap(a)).total_cmp(&(state.weights[b] - targets.cap(b)))
            });
        let p = match over {
            Some(p) => p,
            None => return,
        };
        // Cheapest movable vertex in p: best gain to any part with spare
        // capacity; fall back to the relatively lightest part.
        let mut best: Option<(usize, PartId, f64)> = None;
        for v in 0..n {
            if state.part[v] != p || fixed.is_fixed(v) {
                continue;
            }
            let w = state.h.vertex_weight(v);
            let candidate = match state.best_move(v, targets, scratch) {
                Some((q, g)) => Some((q, g)),
                None => {
                    // No adjacent feasible part: move toward the part with
                    // the most spare relative capacity.
                    let q = (0..state.k)
                        .filter(|&q| q != p)
                        .min_by(|&a, &b| {
                            ((state.weights[a] + w) / targets.target[a].max(1e-12)).total_cmp(
                                &((state.weights[b] + w) / targets.target[b].max(1e-12)),
                            )
                        })
                        .unwrap();
                    Some((q, state.gain(v, q)))
                }
            };
            if let Some((q, g)) = candidate {
                if best.is_none_or(|(_, _, bg)| g > bg) {
                    best = Some((v, q, g));
                }
            }
        }
        match best {
            Some((v, q, _)) => {
                state.apply(v, q);
                // Keep only moves that strictly reduce total violation;
                // otherwise we are ping-ponging load between parts that
                // can never fit under their caps — stop.
                if total_violation(&state.weights) >= violation_before - 1e-12 {
                    state.apply(v, p);
                    return;
                }
            }
            None => return, // only fixed vertices left in p; nothing to do
        }
    }
}

/// Greedy rebalancing repair for multi-constraint feasibility (Maas et
/// al.): while any constraint of any part exceeds its cap, relocate one
/// vertex that carries load on a violated constraint out of its part —
/// choosing, over every such vertex and destination, the move that
/// minimizes the resulting global maximum relative violation (cut gain
/// breaks ties). When no single relocation helps, it falls back to
/// *swapping* a vertex of a most-violated part against one elsewhere —
/// the escape needed when the only parts with headroom on the violated
/// constraint are saturated on another. Every step must strictly shrink
/// the descending-sorted vector of all per-(constraint, part)
/// violations in lexicographic order, so the pass terminates and never
/// cycles. Returns the number of vertex moves applied (a swap counts
/// two).
///
/// This runs only when auxiliary constraints are present and plain FM
/// (whose moves all respect the caps) cannot restore feasibility; the
/// scalar pipeline never reaches it.
pub(crate) fn greedy_repair(
    state: &mut PartitionState,
    targets: &PartTargets,
    fixed: &FixedAssignment,
) -> usize {
    dlb_trace::count(dlb_trace::Counter::RepairInvocations, 1);
    let n = state.h.num_vertices();
    let k = state.k;
    let arity = targets.arity();
    assert!(
        arity <= state.h.load_arity(),
        "balance targets reference more constraints than the hypergraph carries"
    );
    let cap = |c: usize, p: usize| -> f64 {
        if c == 0 {
            targets.cap(p)
        } else {
            targets.aux_cap(c, p)
        }
    };
    let load_of = |state: &PartitionState, c: usize, p: usize| -> f64 {
        if c == 0 {
            state.weights[p]
        } else {
            state.aux_weight(c, p)
        }
    };
    // Largest relative overshoot over all (constraint, part) pairs, with
    // its argmax. Zero-capacity parts count as violated when loaded.
    let max_violation = |state: &PartitionState| -> (f64, usize, usize) {
        let mut best = (0.0, 0, 0);
        for c in 0..arity {
            for p in 0..k {
                let cp = cap(c, p);
                let w = load_of(state, c, p);
                let over = if cp > 0.0 {
                    w / cp - 1.0
                } else if w > 0.0 {
                    f64::INFINITY
                } else {
                    0.0
                };
                if over > best.0 {
                    best = (over, c, p);
                }
            }
        }
        best
    };
    let over_of = |w: f64, cp: f64| -> f64 {
        if cp > 0.0 {
            w / cp - 1.0
        } else if w > 0.0 {
            f64::INFINITY
        } else {
            0.0
        }
    };
    // Lexicographic progress test. The pass's well-founded measure is the
    // descending-sorted vector of all `arity * k` relative violations; a
    // step is kept only if it makes that vector strictly smaller, which
    // both drives the maximum down *and* lets the pass chip away at
    // secondary violations when the maximum is momentarily immovable
    // (merging the identical untouched entries into two sorted sequences
    // preserves their order, so the comparison reduces to the touched
    // entries alone). Strictly decreasing measure: no cycles.
    fn lex_improves(old_t: &mut [f64], new_t: &mut [f64]) -> bool {
        old_t.sort_by(|x, y| y.partial_cmp(x).unwrap());
        new_t.sort_by(|x, y| y.partial_cmp(x).unwrap());
        for (o, nw) in old_t.iter().zip(new_t.iter()) {
            if *nw < *o - 1e-12 {
                return true;
            }
            if *nw > *o + 1e-12 {
                return false;
            }
        }
        false
    }
    let mut old_t = vec![0.0f64; 2 * arity];
    let mut new_t = vec![0.0f64; 2 * arity];
    let mut moves = 0usize;
    let max_moves = 2 * n + 16;
    while moves < max_moves {
        let (viol, _, _) = max_violation(state);
        if viol <= 1e-9 {
            break; // feasible on every constraint
        }
        // Violation matrix and, per constraint, the top-three violations
        // with their parts: a step only touches two parts, so the
        // resulting global maximum is O(arity) to evaluate from these.
        let over: Vec<Vec<f64>> = (0..arity)
            .map(|c| (0..k).map(|p| over_of(load_of(state, c, p), cap(c, p))).collect())
            .collect();
        let mut top3 = vec![[(f64::NEG_INFINITY, usize::MAX); 3]; arity];
        for (c, top) in top3.iter_mut().enumerate() {
            for (p, &o) in over[c].iter().enumerate() {
                if o > top[0].0 {
                    top[2] = top[1];
                    top[1] = top[0];
                    top[0] = (o, p);
                } else if o > top[1].0 {
                    top[2] = top[1];
                    top[1] = (o, p);
                } else if o > top[2].0 {
                    top[2] = (o, p);
                }
            }
        }
        let others_max = |c: usize, a: usize, q: usize| -> f64 {
            for &(o, p) in &top3[c] {
                if p != a && p != q {
                    return o;
                }
            }
            f64::NEG_INFINITY
        };
        // Anchor parts: every part violated on some constraint. A vertex
        // is a relocation candidate if it carries load on one of its
        // part's violated constraints.
        let violated: Vec<Vec<usize>> = (0..k)
            .map(|p| (0..arity).filter(|&c| over[c][p] > 1e-9).collect())
            .collect();
        // Over every movable vertex of a violated part and every
        // destination, the relocation that minimizes the resulting
        // global maximum violation, among those making lexicographic
        // progress; among equals, the one whose touched parts end
        // lowest, then the best cut gain.
        let mut best: Option<(usize, PartId, f64, f64, f64)> = None;
        for v in 0..n {
            let a = state.part[v];
            if violated[a].is_empty() || fixed.is_fixed(v) {
                continue;
            }
            if !violated[a].iter().any(|&c| state.h.vertex_load(v, c) > 0.0) {
                continue;
            }
            for q in 0..k {
                if q == a {
                    continue;
                }
                let mut after = 0.0f64;
                let mut touched = f64::NEG_INFINITY;
                for c in 0..arity {
                    let lv = state.h.vertex_load(v, c);
                    let from = over_of(load_of(state, c, a) - lv, cap(c, a));
                    let to = over_of(load_of(state, c, q) + lv, cap(c, q));
                    old_t[2 * c] = over[c][a];
                    old_t[2 * c + 1] = over[c][q];
                    new_t[2 * c] = from;
                    new_t[2 * c + 1] = to;
                    after = after.max(from).max(to).max(others_max(c, a, q));
                    touched = touched.max(from).max(to);
                }
                if !lex_improves(&mut old_t, &mut new_t) {
                    continue;
                }
                let g = state.gain(v, q);
                let better = match best {
                    None => true,
                    Some((_, _, ba, bt, bg)) => {
                        after < ba - 1e-12
                            || (after < ba + 1e-12
                                && (touched < bt - 1e-12
                                    || (touched < bt + 1e-12 && g > bg + 1e-12)))
                    }
                };
                if better {
                    best = Some((v, q, after, touched, g));
                }
            }
        }
        if let Some((v, q, _, _, _)) = best {
            state.apply(v, q);
            moves += 1;
            continue;
        }
        // No relocation makes progress — typically the remaining slack
        // sits on parts that are themselves at a cap on another
        // constraint (e.g. byte headroom only on flop-saturated parts).
        // A *swap* trades a vertex of an overloaded part against one
        // elsewhere, changing both parts' loads by the difference; swaps
        // anchor at each constraint's most-violated part.
        let mut anchors: Vec<usize> = (0..arity)
            .filter(|&c| top3[c][0].0 > 1e-9)
            .map(|c| top3[c][0].1)
            .collect();
        anchors.sort_unstable();
        anchors.dedup();
        let mut best_swap: Option<(usize, usize, f64, f64, f64)> = None;
        for &a in &anchors {
            for v in 0..n {
                if state.part[v] != a || fixed.is_fixed(v) {
                    continue;
                }
                if !violated[a].iter().any(|&c| state.h.vertex_load(v, c) > 0.0) {
                    continue;
                }
                for u in 0..n {
                    let q = state.part[u];
                    if q == a || fixed.is_fixed(u) {
                        continue;
                    }
                    let mut after = 0.0f64;
                    let mut touched = f64::NEG_INFINITY;
                    for c in 0..arity {
                        let d = state.h.vertex_load(v, c) - state.h.vertex_load(u, c);
                        let from = over_of(load_of(state, c, a) - d, cap(c, a));
                        let to = over_of(load_of(state, c, q) + d, cap(c, q));
                        old_t[2 * c] = over[c][a];
                        old_t[2 * c + 1] = over[c][q];
                        new_t[2 * c] = from;
                        new_t[2 * c + 1] = to;
                        after = after.max(from).max(to).max(others_max(c, a, q));
                        touched = touched.max(from).max(to);
                    }
                    if !lex_improves(&mut old_t, &mut new_t) {
                        continue;
                    }
                    let g = state.gain(v, q) + state.gain(u, a);
                    let better = match best_swap {
                        None => true,
                        Some((_, _, ba, bt, bg)) => {
                            after < ba - 1e-12
                                || (after < ba + 1e-12
                                    && (touched < bt - 1e-12
                                        || (touched < bt + 1e-12 && g > bg + 1e-12)))
                        }
                    };
                    if better {
                        best_swap = Some((v, u, after, touched, g));
                    }
                }
            }
        }
        let (v, u, _, _, _) = match best_swap {
            Some(s) => s,
            None => break, // no step makes progress — stop, stay deterministic
        };
        let a = state.part[v];
        let q = state.part[u];
        state.apply(v, q);
        state.apply(u, a);
        moves += 2;
    }
    dlb_trace::count(dlb_trace::Counter::RepairMovesApplied, moves as u64);
    moves
}

/// One FM pass with rollback. Returns the cut improvement kept.
fn fm_pass(
    state: &mut PartitionState,
    targets: &PartTargets,
    fixed: &FixedAssignment,
    cfg: &RefinementConfig,
    scratch: &mut RefineScratch,
    rng: &mut StdRng,
) -> f64 {
    let n = state.h.num_vertices();
    // At most one live heap entry per vertex: pops revalidate gains, so
    // extra pushes only add churn. `queued` dedupes; it is cleared on pop
    // so later gain changes can re-queue the vertex.
    scratch.prepare_pass(state.k, n);

    let mut boundary = std::mem::take(&mut scratch.boundary);
    state.boundary_vertices_into(&mut boundary);
    boundary.shuffle(rng);
    // Parallel gain seeding: the partition is frozen here, so
    // `best_move_metric` is a pure function of (state, v) — computing
    // seeds across workers (per-worker MoveScratch) and pushing them in
    // boundary order is bit-identical to the serial loop in both
    // determinism modes.
    let state_ref: &PartitionState = state;
    let seeds = parallel::map_chunks_with(
        state_ref.threads,
        boundary.len(),
        SEED_CHUNK,
        || MoveScratch::new(state_ref.k),
        |mv, _, range| {
            let mut out: Vec<(usize, PartId, f64)> = Vec::with_capacity(range.len());
            for &v in &boundary[range] {
                if fixed.is_fixed(v) {
                    continue;
                }
                if let Some((to, gain)) = state_ref.best_move_metric(v, targets, cfg.metric, mv) {
                    out.push((v, to, gain));
                }
            }
            out
        },
    );
    for (v, to, gain) in seeds.into_iter().flatten() {
        scratch.heap.push(Cand { gain, v, to });
        scratch.queued[v] = true;
    }
    scratch.boundary = boundary;

    let mut cum = 0.0;
    let mut best_cum = 0.0;
    let mut best_len = 0usize;
    let mut neg_streak = 0usize;

    while let Some(c) = scratch.heap.pop() {
        scratch.queued[c.v] = false;
        if scratch.locked[c.v] || fixed.is_fixed(c.v) {
            continue;
        }
        // Lazy revalidation: the stored move may be stale.
        let current = state.best_move_metric(c.v, targets, cfg.metric, &mut scratch.mv);
        match current {
            None => continue,
            Some((to, gain)) => {
                if to != c.to || (gain - c.gain).abs() > 1e-9 {
                    scratch.heap.push(Cand { gain, v: c.v, to });
                    scratch.queued[c.v] = true;
                    continue;
                }
                let from = state.part[c.v];
                state.apply(c.v, to);
                scratch.locked[c.v] = true;
                scratch.applied.push((c.v, from));
                cum += gain;
                if cum > best_cum + 1e-12 {
                    best_cum = cum;
                    best_len = scratch.applied.len();
                    neg_streak = 0;
                } else {
                    neg_streak += 1;
                    if cfg.max_negative_streak > 0 && neg_streak >= cfg.max_negative_streak {
                        break;
                    }
                }
                // Re-queue neighbors whose gains changed (deduped).
                for &j in state.h.vertex_nets(c.v) {
                    if state.h.net_size(j) > MAX_NET_SIZE_FOR_UPDATES {
                        continue;
                    }
                    for &w in state.h.net(j) {
                        if !scratch.locked[w] && !scratch.queued[w] && !fixed.is_fixed(w) {
                            if let Some((to, gain)) =
                                state.best_move_metric(w, targets, cfg.metric, &mut scratch.mv)
                            {
                                scratch.heap.push(Cand { gain, v: w, to });
                                scratch.queued[w] = true;
                            }
                        }
                    }
                }
            }
        }
    }

    // Roll back past the best prefix.
    for &(v, from) in scratch.applied[best_len..].iter().rev() {
        state.apply(v, from);
    }

    let attempted = scratch.applied.len() as u64;
    dlb_trace::count(dlb_trace::Counter::FmPasses, 1);
    dlb_trace::count(dlb_trace::Counter::FmMovesAttempted, attempted);
    dlb_trace::count(dlb_trace::Counter::FmMovesAccepted, best_len as u64);
    dlb_trace::count(
        dlb_trace::Counter::FmMovesRolledBack,
        attempted - best_len as u64,
    );
    best_cum
}

/// Refines `part` in place: first restores balance if violated, then runs
/// FM passes until no pass improves the cut (or `cfg.max_passes`).
/// Returns the total cut improvement from the FM passes.
pub fn refine(
    h: &Hypergraph,
    targets: &PartTargets,
    fixed: &FixedAssignment,
    part: &mut Vec<PartId>,
    cfg: &RefinementConfig,
    rng: &mut StdRng,
) -> f64 {
    let mut scratch = RefineScratch::new();
    refine_threads(h, targets, fixed, part, cfg, rng, 1, &mut scratch)
}

/// [`refine`] with an explicit worker-thread count (state builds and
/// boundary/cut scans) and a caller-owned [`RefineScratch`] reused across
/// calls. Bit-identical to [`refine`] at every thread count: the FM move
/// loop itself is serial; only whole-partition scans are chunked.
#[allow(clippy::too_many_arguments)]
pub fn refine_threads(
    h: &Hypergraph,
    targets: &PartTargets,
    fixed: &FixedAssignment,
    part: &mut Vec<PartId>,
    cfg: &RefinementConfig,
    rng: &mut StdRng,
    threads: usize,
    scratch: &mut RefineScratch,
) -> f64 {
    let k = targets.k();
    if k < 2 || h.num_vertices() == 0 {
        return 0.0;
    }
    let multi = !targets.aux.is_empty();
    if multi {
        assert!(
            targets.arity() <= h.load_arity(),
            "balance targets reference more constraints than the hypergraph carries"
        );
    }
    let mut state = PartitionState::new_threads(h, k, std::mem::take(part), threads);
    scratch.mv.ensure(k);

    rebalance(&mut state, targets, fixed, &mut scratch.mv);
    // Primary-only rebalancing cannot see auxiliary violations; repair
    // them before FM so the pass starts from a feasible assignment.
    if multi && !state.feasible(targets) {
        greedy_repair(&mut state, targets, fixed);
    }

    let mut total = 0.0;
    for _ in 0..cfg.max_passes {
        let improvement = fm_pass(&mut state, targets, fixed, cfg, scratch, rng);
        total += improvement;
        if improvement <= 1e-12 {
            break;
        }
    }
    // FM only makes cap-respecting moves, so it preserves feasibility —
    // but if repair could not finish above, try once more now that FM
    // has untangled the cut, and let one extra pass recover cut quality.
    if multi && !state.feasible(targets) && greedy_repair(&mut state, targets, fixed) > 0 {
        total += fm_pass(&mut state, targets, fixed, cfg, scratch, rng);
    }
    *part = state.part;
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_hypergraph::metrics;
    use rand::SeedableRng;

    fn uniform_targets(h: &Hypergraph, k: usize) -> PartTargets {
        PartTargets::uniform(h.total_vertex_weight(), k, 0.05)
    }

    #[test]
    fn state_tracks_cut_incrementally() {
        let h = crate::tests::grid_hypergraph(4, 4);
        let part: Vec<usize> = (0..16).map(|v| v % 2).collect();
        let mut state = PartitionState::new(&h, 2, part.clone());
        assert_eq!(state.cut(), metrics::cutsize_connectivity(&h, &part, 2));
        state.apply(3, 0);
        let mut moved = part;
        moved[3] = 0;
        assert_eq!(state.cut(), metrics::cutsize_connectivity(&h, &moved, 2));
    }

    #[test]
    fn gain_matches_recomputed_cut_delta() {
        let h = crate::tests::random_hypergraph(30, 60, 5, 11);
        let part: Vec<usize> = (0..30).map(|v| v % 3).collect();
        let mut state = PartitionState::new(&h, 3, part);
        for v in [0usize, 7, 13, 29] {
            for q in 0..3 {
                if q == state.part[v] {
                    continue;
                }
                let before = state.cut();
                let gain = state.gain(v, q);
                let from = state.part[v];
                state.apply(v, q);
                let after = state.cut();
                assert!(
                    (before - after - gain).abs() < 1e-9,
                    "v={v} q={q}: predicted {gain}, actual {}",
                    before - after
                );
                state.apply(v, from);
            }
        }
    }

    #[test]
    fn cutnet_gain_matches_recomputed_delta() {
        use dlb_hypergraph::metrics::cutsize;
        let h = crate::tests::random_hypergraph(25, 50, 5, 19);
        let part: Vec<usize> = (0..25).map(|v| v % 3).collect();
        let mut state = PartitionState::new(&h, 3, part);
        for v in [0usize, 6, 12, 24] {
            for q in 0..3 {
                if q == state.part[v] {
                    continue;
                }
                let before = cutsize(&h, &state.part, 3, CutMetric::CutNet);
                let gain = state.gain_metric(v, q, CutMetric::CutNet);
                let from = state.part[v];
                state.apply(v, q);
                let after = cutsize(&h, &state.part, 3, CutMetric::CutNet);
                assert!(
                    (before - after - gain).abs() < 1e-9,
                    "v={v} q={q}: predicted {gain}, actual {}",
                    before - after
                );
                state.apply(v, from);
            }
        }
    }

    #[test]
    fn refine_with_cutnet_objective_improves_cutnet() {
        use dlb_hypergraph::metrics::cutsize;
        let h = crate::tests::grid_hypergraph(8, 8);
        let mut part: Vec<usize> = (0..64).map(|v| v % 2).collect();
        let before = cutsize(&h, &part, 2, CutMetric::CutNet);
        let t = uniform_targets(&h, 2);
        let fixed = FixedAssignment::free(64);
        let cfg = RefinementConfig { metric: CutMetric::CutNet, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(8);
        refine(&h, &t, &fixed, &mut part, &cfg, &mut rng);
        let after = cutsize(&h, &part, 2, CutMetric::CutNet);
        assert!(after < before, "cut-net {before} -> {after}");
    }

    #[test]
    fn refine_improves_a_bad_partition() {
        let h = crate::tests::grid_hypergraph(8, 8);
        // Stripes by column parity: terrible cut.
        let mut part: Vec<usize> = (0..64).map(|v| v % 2).collect();
        let before = metrics::cutsize_connectivity(&h, &part, 2);
        let t = uniform_targets(&h, 2);
        let fixed = FixedAssignment::free(64);
        let mut rng = StdRng::seed_from_u64(0);
        let gain = refine(&h, &t, &fixed, &mut part, &RefinementConfig::default(), &mut rng);
        let after = metrics::cutsize_connectivity(&h, &part, 2);
        assert!((before - after - gain).abs() < 1e-9);
        assert!(after < before / 2.0, "cut {before} -> {after}");
        assert!(metrics::imbalance(&h, &part, 2) <= 1.05 + 1e-9);
    }

    #[test]
    fn refine_never_moves_fixed_vertices() {
        let h = crate::tests::grid_hypergraph(8, 8);
        let mut part: Vec<usize> = (0..64).map(|v| v % 2).collect();
        let mut fixed = FixedAssignment::free(64);
        for v in (0..64).step_by(7) {
            fixed.fix(v, part[v]);
        }
        let t = uniform_targets(&h, 2);
        let mut rng = StdRng::seed_from_u64(1);
        refine(&h, &t, &fixed, &mut part, &RefinementConfig::default(), &mut rng);
        for v in (0..64).step_by(7) {
            assert_eq!(part[v], v % 2, "fixed vertex {v} moved");
        }
    }

    #[test]
    fn refine_respects_caps() {
        let h = crate::tests::random_hypergraph(80, 160, 4, 5);
        let mut part: Vec<usize> = (0..80).map(|v| v % 4).collect();
        let t = uniform_targets(&h, 4);
        let fixed = FixedAssignment::free(80);
        let mut rng = StdRng::seed_from_u64(2);
        refine(&h, &t, &fixed, &mut part, &RefinementConfig::default(), &mut rng);
        let w = metrics::part_weights(&h, &part, 4);
        for p in 0..4 {
            assert!(w[p] <= t.cap(p) + 1e-9, "part {p} weight {} > cap {}", w[p], t.cap(p));
        }
    }

    #[test]
    fn rebalance_fixes_gross_imbalance() {
        let h = crate::tests::grid_hypergraph(8, 8);
        // Everything in part 0.
        let mut part = vec![0usize; 64];
        let t = uniform_targets(&h, 2);
        let fixed = FixedAssignment::free(64);
        let mut rng = StdRng::seed_from_u64(3);
        refine(&h, &t, &fixed, &mut part, &RefinementConfig::default(), &mut rng);
        let imb = metrics::imbalance(&h, &part, 2);
        assert!(imb <= 1.05 + 1e-9, "imbalance {imb} after rebalance+refine");
    }

    #[test]
    fn boundary_detection() {
        let h = crate::tests::grid_hypergraph(4, 4);
        // Left half vs right half: boundary is columns 1 and 2.
        let part: Vec<usize> = (0..16).map(|v| if v % 4 < 2 { 0 } else { 1 }).collect();
        let state = PartitionState::new(&h, 2, part);
        let boundary = state.boundary_vertices();
        let expected: Vec<usize> = (0..16).filter(|v| v % 4 == 1 || v % 4 == 2).collect();
        assert_eq!(boundary, expected);
    }

    #[test]
    fn refine_with_all_fixed_is_a_noop() {
        let h = crate::tests::grid_hypergraph(4, 4);
        let orig: Vec<usize> = (0..16).map(|v| v % 2).collect();
        let mut part = orig.clone();
        let opts: Vec<Option<usize>> = orig.iter().map(|&p| Some(p)).collect();
        let fixed = FixedAssignment::from_options(&opts);
        let t = uniform_targets(&h, 2);
        let mut rng = StdRng::seed_from_u64(4);
        let gain = refine(&h, &t, &fixed, &mut part, &RefinementConfig::default(), &mut rng);
        assert_eq!(part, orig);
        assert_eq!(gain, 0.0);
    }

    #[test]
    fn k_one_is_noop() {
        let h = crate::tests::grid_hypergraph(3, 3);
        let mut part = vec![0usize; 9];
        let t = uniform_targets(&h, 1);
        let fixed = FixedAssignment::free(9);
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(refine(&h, &t, &fixed, &mut part, &RefinementConfig::default(), &mut rng), 0.0);
    }
}
