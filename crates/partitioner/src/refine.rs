//! Fiduccia–Mattheyses refinement with fixed vertices (Section 4.3).
//!
//! The refiner improves the connectivity-1 cut of a k-way assignment by
//! hill-climbing vertex moves with rollback: within a pass, boundary
//! vertices move one at a time to their best-gain feasible target part
//! (each vertex at most once per pass), the running cumulative gain is
//! tracked, and at the end the pass is rolled back to its best prefix —
//! so individual negative-gain moves are allowed as escapes from local
//! minima, but a pass never ends worse than it started. Fixed vertices
//! are never moved.
//!
//! Gains use the k-1 metric directly: moving `v` from `p` to `q` changes
//! the cut by `Σ_{n ∋ v} c_n·([σ(n,p)=1] − [σ(n,q)=0])`, where `σ(n,p)`
//! is the number of `n`'s pins in part `p`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use dlb_hypergraph::metrics::CutMetric;
use dlb_hypergraph::{parallel, Hypergraph, PartId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use crate::config::{PartTargets, RefinementConfig};
use crate::fixed::FixedAssignment;

/// Nets larger than this do not trigger neighbor re-queues after a move;
/// their pins' gains drift slightly until popped (and are then
/// recomputed exactly). Keeps huge nets from making passes quadratic.
const MAX_NET_SIZE_FOR_UPDATES: usize = 400;

/// Chunk size for parallel FM gain seeding: a `best_move` walks all of a
/// vertex's nets, so chunks are smaller than [`parallel::DEFAULT_CHUNK`]
/// to keep workers even on skewed boundaries.
const SEED_CHUNK: usize = 1024;

/// Incrementally maintained partition state: per-net-per-part pin counts
/// and part weights.
pub struct PartitionState<'a> {
    h: &'a Hypergraph,
    k: usize,
    /// Worker threads for state builds and whole-partition scans
    /// (`cut`, `boundary_vertices`). Any value gives bit-identical
    /// results — all reductions follow the chunked-reduction rule.
    threads: usize,
    /// `sigma[j*k + p]` = number of net `j`'s pins in part `p`.
    sigma: Vec<u32>,
    /// Total vertex weight per part.
    pub weights: Vec<f64>,
    /// Current assignment.
    pub part: Vec<PartId>,
}

impl<'a> PartitionState<'a> {
    /// Builds the state for `part` on `h`.
    pub fn new(h: &'a Hypergraph, k: usize, part: Vec<PartId>) -> Self {
        Self::new_threads(h, k, part, 1)
    }

    /// [`Self::new`] with an explicit worker-thread count. The sigma
    /// table is built per net chunk and concatenated in chunk order; the
    /// part weights are per-chunk partial sums folded in chunk order —
    /// so the state is bit-identical at every thread count.
    pub fn new_threads(h: &'a Hypergraph, k: usize, part: Vec<PartId>, threads: usize) -> Self {
        assert_eq!(part.len(), h.num_vertices());
        let threads = threads.max(1);
        // Sigma table: each chunk of nets owns the `k`-strided window of
        // the destination buffer directly — no per-chunk vectors, no
        // concatenation pass.
        let mut sigma = vec![0u32; h.num_nets() * k];
        let part_ref = &part;
        parallel::fill_chunks(
            threads,
            h.num_nets(),
            parallel::DEFAULT_CHUNK,
            k,
            &mut sigma,
            |_, range, window| {
                for j in range.clone() {
                    let base = (j - range.start) * k;
                    for &v in h.net(j) {
                        window[base + part_ref[v]] += 1;
                    }
                }
            },
        );
        // Part weights: per-chunk partial vectors live in one arena-backed
        // flat buffer (chunk i owns window i), folded in chunk order —
        // bit-identical at every thread count.
        let n_chunks = parallel::num_chunks(h.num_vertices(), parallel::DEFAULT_CHUNK);
        let mut partials = parallel::scratch_vec_filled::<f64>(n_chunks * k, 0.0);
        parallel::fill_per_chunk(
            threads,
            h.num_vertices(),
            parallel::DEFAULT_CHUNK,
            k,
            &mut partials,
            |_, range, window| {
                for v in range {
                    window[part_ref[v]] += h.vertex_weight(v);
                }
            },
        );
        let mut weights = vec![0.0f64; k];
        for local in partials.chunks(k) {
            for p in 0..k {
                weights[p] += local[p];
            }
        }
        PartitionState { h, k, threads, sigma, weights, part }
    }

    #[inline]
    fn sigma(&self, j: usize, p: usize) -> u32 {
        self.sigma[j * self.k + p]
    }

    /// Moves `v` to part `q`, updating pin counts and weights.
    pub fn apply(&mut self, v: usize, q: PartId) {
        let p = self.part[v];
        if p == q {
            return;
        }
        for &j in self.h.vertex_nets(v) {
            self.sigma[j * self.k + p] -= 1;
            self.sigma[j * self.k + q] += 1;
        }
        let w = self.h.vertex_weight(v);
        self.weights[p] -= w;
        self.weights[q] += w;
        self.part[v] = q;
    }

    /// The gain (cut decrease) of moving `v` to `q` under the k-1 metric.
    pub fn gain(&self, v: usize, q: PartId) -> f64 {
        let p = self.part[v];
        if p == q {
            return 0.0;
        }
        let mut g = 0.0;
        for &j in self.h.vertex_nets(v) {
            let c = self.h.net_cost(j);
            if self.sigma(j, p) == 1 {
                g += c;
            }
            if self.sigma(j, q) == 0 {
                g -= c;
            }
        }
        g
    }

    /// The gain of moving `v` to `q` under the chosen metric. For
    /// [`CutMetric::CutNet`], a net only contributes when the move makes
    /// it entirely internal to `q` (+cost) or splits a net that was
    /// entirely internal to `p` (−cost).
    pub fn gain_metric(&self, v: usize, q: PartId, metric: CutMetric) -> f64 {
        match metric {
            CutMetric::Connectivity => self.gain(v, q),
            CutMetric::CutNet => {
                let p = self.part[v];
                if p == q {
                    return 0.0;
                }
                let mut g = 0.0;
                for &j in self.h.vertex_nets(v) {
                    let size = self.h.net_size(j) as u32;
                    let c = self.h.net_cost(j);
                    if self.sigma(j, q) == size - 1 {
                        g += c; // net becomes internal to q
                    }
                    if self.sigma(j, p) == size {
                        g -= c; // net was internal to p; move cuts it
                    }
                }
                g
            }
        }
    }

    /// The best feasible move for `v`: the highest-gain target part among
    /// the parts `v`'s nets already touch (ties → lighter part), subject
    /// to the weight cap. `scratch` must be a `k`-length pair of arrays
    /// used as a stamped accumulator.
    pub fn best_move(
        &self,
        v: usize,
        targets: &PartTargets,
        scratch: &mut MoveScratch,
    ) -> Option<(PartId, f64)> {
        let p = self.part[v];
        scratch.stamp += 1;
        let stamp = scratch.stamp;

        let mut base = 0.0; // gain component from leaving p
        let mut total = 0.0;
        for &j in self.h.vertex_nets(v) {
            let c = self.h.net_cost(j);
            total += c;
            if self.sigma(j, p) == 1 {
                base += c;
            }
            // Candidate targets: parts with pins on v's nets.
            for q in 0..self.k {
                if q != p && self.sigma(j, q) > 0 {
                    if scratch.mark[q] != stamp {
                        scratch.mark[q] = stamp;
                        scratch.present[q] = 0.0;
                        scratch.cands.push(q);
                    }
                    scratch.present[q] += c;
                }
            }
        }

        let w = self.h.vertex_weight(v);
        let mut best: Option<(PartId, f64)> = None;
        for &q in &scratch.cands {
            if self.weights[q] + w > targets.cap(q) {
                continue;
            }
            let gain = base - (total - scratch.present[q]);
            match best {
                Some((bq, bg)) => {
                    if gain > bg + 1e-12
                        || (gain > bg - 1e-12 && self.weights[q] < self.weights[bq])
                    {
                        best = Some((q, gain));
                    }
                }
                None => best = Some((q, gain)),
            }
        }
        scratch.cands.clear();
        best
    }

    /// [`Self::best_move`] under the chosen metric (the k-1 path uses the
    /// specialized decomposition; cut-net evaluates candidates directly).
    pub fn best_move_metric(
        &self,
        v: usize,
        targets: &PartTargets,
        metric: CutMetric,
        scratch: &mut MoveScratch,
    ) -> Option<(PartId, f64)> {
        if metric == CutMetric::Connectivity {
            return self.best_move(v, targets, scratch);
        }
        let p = self.part[v];
        scratch.stamp += 1;
        let stamp = scratch.stamp;
        scratch.cands.clear();
        for &j in self.h.vertex_nets(v) {
            for q in 0..self.k {
                if q != p && self.sigma(j, q) > 0 && scratch.mark[q] != stamp {
                    scratch.mark[q] = stamp;
                    scratch.cands.push(q);
                }
            }
        }
        let w = self.h.vertex_weight(v);
        let mut best: Option<(PartId, f64)> = None;
        for &q in &scratch.cands {
            if self.weights[q] + w > targets.cap(q) {
                continue;
            }
            let gain = self.gain_metric(v, q, metric);
            match best {
                Some((bq, bg)) => {
                    if gain > bg + 1e-12
                        || (gain > bg - 1e-12 && self.weights[q] < self.weights[bq])
                    {
                        best = Some((q, gain));
                    }
                }
                None => best = Some((q, gain)),
            }
        }
        scratch.cands.clear();
        best
    }

    /// Vertices on the cut boundary: incident to at least one net that
    /// touches more than one part.
    pub fn boundary_vertices(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.boundary_vertices_into(&mut out);
        out
    }

    /// [`Self::boundary_vertices`] into a caller-owned buffer (cleared
    /// first), so refinement passes can reuse the allocation. The
    /// expensive per-net part scan runs chunked over the nets; the cheap
    /// pin-marking pass stays serial, so the result is order-identical
    /// at every thread count.
    pub fn boundary_vertices_into(&self, out: &mut Vec<usize>) {
        // Cut-net flags straight into an arena-backed buffer: one write
        // per net, no per-chunk vectors (the buffer itself is reused
        // across passes on this thread).
        let mut cut_net = parallel::scratch_vec_filled::<bool>(self.h.num_nets(), false);
        parallel::fill_chunks(
            self.threads,
            self.h.num_nets(),
            parallel::DEFAULT_CHUNK,
            1,
            &mut cut_net,
            |_, range, window| {
                for j in range.clone() {
                    window[j - range.start] =
                        (0..self.k).filter(|&p| self.sigma(j, p) > 0).count() > 1;
                }
            },
        );
        let mut boundary = parallel::scratch_vec_filled::<bool>(self.h.num_vertices(), false);
        for (j, &is_cut) in cut_net.iter().enumerate() {
            if is_cut {
                for &v in self.h.net(j) {
                    boundary[v] = true;
                }
            }
        }
        out.clear();
        out.extend(
            boundary
                .iter()
                .enumerate()
                .filter_map(|(v, &b)| b.then_some(v)),
        );
    }

    /// Current k-1 cut computed from the maintained pin counts: per-chunk
    /// partial sums over the nets folded in chunk order (bit-identical at
    /// every thread count).
    pub fn cut(&self) -> f64 {
        parallel::sum_chunks(
            self.threads,
            self.h.num_nets(),
            parallel::DEFAULT_CHUNK,
            |range| {
                let mut cut = 0.0;
                for j in range {
                    let touched = (0..self.k).filter(|&p| self.sigma(j, p) > 0).count();
                    if touched > 1 {
                        cut += self.h.net_cost(j) * (touched - 1) as f64;
                    }
                }
                cut
            },
        )
    }
}

/// Reusable per-call scratch for [`PartitionState::best_move`].
pub struct MoveScratch {
    mark: Vec<u64>,
    present: Vec<f64>,
    cands: Vec<usize>,
    stamp: u64,
}

impl MoveScratch {
    /// Scratch for `k` parts.
    pub fn new(k: usize) -> Self {
        MoveScratch {
            mark: vec![0; k],
            present: vec![0.0; k],
            cands: Vec::new(),
            stamp: 0,
        }
    }

    /// Grows the scratch to cover `k` parts (never shrinks; the stamp
    /// counter survives, so stale marks are ignored automatically).
    pub fn ensure(&mut self, k: usize) {
        if self.mark.len() < k {
            self.mark.resize(k, 0);
            self.present.resize(k, 0.0);
        }
    }
}

/// Allocation-reusing scratch for [`refine_threads`]: the move scratch,
/// the candidate heap, and the per-pass vertex flag arrays. One instance
/// serves every level of a multilevel V-cycle (and every bisection of a
/// recursive-bisection tree), so the per-pass `O(n)` allocations of the
/// original refiner are paid once per partitioner call instead of once
/// per pass.
pub struct RefineScratch {
    mv: MoveScratch,
    heap: BinaryHeap<Cand>,
    locked: Vec<bool>,
    queued: Vec<bool>,
    applied: Vec<(usize, PartId)>,
    boundary: Vec<usize>,
}

impl RefineScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        RefineScratch {
            mv: MoveScratch::new(0),
            heap: BinaryHeap::new(),
            locked: Vec::new(),
            queued: Vec::new(),
            applied: Vec::new(),
            boundary: Vec::new(),
        }
    }

    /// Prepares the scratch for one FM pass over `n` vertices and `k`
    /// parts: clears (retaining capacity) and resizes the flag arrays.
    fn prepare_pass(&mut self, k: usize, n: usize) {
        self.mv.ensure(k);
        self.heap.clear();
        self.locked.clear();
        self.locked.resize(n, false);
        self.queued.clear();
        self.queued.resize(n, false);
        self.applied.clear();
    }
}

impl Default for RefineScratch {
    fn default() -> Self {
        Self::new()
    }
}

struct Cand {
    gain: f64,
    v: usize,
    to: PartId,
}

impl PartialEq for Cand {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Cand {}
impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Cand {
    fn cmp(&self, other: &Self) -> Ordering {
        self.gain
            .total_cmp(&other.gain)
            .then_with(|| other.v.cmp(&self.v))
    }
}

/// Restores balance greedily: while a part exceeds its cap, move the
/// cheapest (highest-gain, i.e. least cut damage) movable vertex out of
/// the most-overweight part into the part with the most spare capacity.
///
/// Needed when projection or fixed-vertex constraints leave the coarse
/// partition overweight; plain FM cannot fix imbalance because it only
/// makes cap-respecting moves.
pub(crate) fn rebalance(
    state: &mut PartitionState,
    targets: &PartTargets,
    fixed: &FixedAssignment,
    scratch: &mut MoveScratch,
) {
    dlb_trace::count(dlb_trace::Counter::RebalanceInvocations, 1);
    let n = state.h.num_vertices();
    let max_moves = 2 * n + 16;
    let total_violation = |weights: &[f64]| -> f64 {
        weights
            .iter()
            .enumerate()
            .map(|(p, &w)| (w - targets.cap(p)).max(0.0))
            .sum()
    };
    for _ in 0..max_moves {
        let violation_before = total_violation(&state.weights);
        // Most-overweight part (relative to cap).
        let over = (0..state.k)
            .filter(|&p| state.weights[p] > targets.cap(p) + 1e-9)
            .max_by(|&a, &b| {
                (state.weights[a] - targets.cap(a)).total_cmp(&(state.weights[b] - targets.cap(b)))
            });
        let p = match over {
            Some(p) => p,
            None => return,
        };
        // Cheapest movable vertex in p: best gain to any part with spare
        // capacity; fall back to the relatively lightest part.
        let mut best: Option<(usize, PartId, f64)> = None;
        for v in 0..n {
            if state.part[v] != p || fixed.is_fixed(v) {
                continue;
            }
            let w = state.h.vertex_weight(v);
            let candidate = match state.best_move(v, targets, scratch) {
                Some((q, g)) => Some((q, g)),
                None => {
                    // No adjacent feasible part: move toward the part with
                    // the most spare relative capacity.
                    let q = (0..state.k)
                        .filter(|&q| q != p)
                        .min_by(|&a, &b| {
                            ((state.weights[a] + w) / targets.target[a].max(1e-12)).total_cmp(
                                &((state.weights[b] + w) / targets.target[b].max(1e-12)),
                            )
                        })
                        .unwrap();
                    Some((q, state.gain(v, q)))
                }
            };
            if let Some((q, g)) = candidate {
                if best.is_none_or(|(_, _, bg)| g > bg) {
                    best = Some((v, q, g));
                }
            }
        }
        match best {
            Some((v, q, _)) => {
                state.apply(v, q);
                // Keep only moves that strictly reduce total violation;
                // otherwise we are ping-ponging load between parts that
                // can never fit under their caps — stop.
                if total_violation(&state.weights) >= violation_before - 1e-12 {
                    state.apply(v, p);
                    return;
                }
            }
            None => return, // only fixed vertices left in p; nothing to do
        }
    }
}

/// One FM pass with rollback. Returns the cut improvement kept.
fn fm_pass(
    state: &mut PartitionState,
    targets: &PartTargets,
    fixed: &FixedAssignment,
    cfg: &RefinementConfig,
    scratch: &mut RefineScratch,
    rng: &mut StdRng,
) -> f64 {
    let n = state.h.num_vertices();
    // At most one live heap entry per vertex: pops revalidate gains, so
    // extra pushes only add churn. `queued` dedupes; it is cleared on pop
    // so later gain changes can re-queue the vertex.
    scratch.prepare_pass(state.k, n);

    let mut boundary = std::mem::take(&mut scratch.boundary);
    state.boundary_vertices_into(&mut boundary);
    boundary.shuffle(rng);
    // Parallel gain seeding: the partition is frozen here, so
    // `best_move_metric` is a pure function of (state, v) — computing
    // seeds across workers (per-worker MoveScratch) and pushing them in
    // boundary order is bit-identical to the serial loop in both
    // determinism modes.
    let state_ref: &PartitionState = state;
    let seeds = parallel::map_chunks_with(
        state_ref.threads,
        boundary.len(),
        SEED_CHUNK,
        || MoveScratch::new(state_ref.k),
        |mv, _, range| {
            let mut out: Vec<(usize, PartId, f64)> = Vec::with_capacity(range.len());
            for &v in &boundary[range] {
                if fixed.is_fixed(v) {
                    continue;
                }
                if let Some((to, gain)) = state_ref.best_move_metric(v, targets, cfg.metric, mv) {
                    out.push((v, to, gain));
                }
            }
            out
        },
    );
    for (v, to, gain) in seeds.into_iter().flatten() {
        scratch.heap.push(Cand { gain, v, to });
        scratch.queued[v] = true;
    }
    scratch.boundary = boundary;

    let mut cum = 0.0;
    let mut best_cum = 0.0;
    let mut best_len = 0usize;
    let mut neg_streak = 0usize;

    while let Some(c) = scratch.heap.pop() {
        scratch.queued[c.v] = false;
        if scratch.locked[c.v] || fixed.is_fixed(c.v) {
            continue;
        }
        // Lazy revalidation: the stored move may be stale.
        let current = state.best_move_metric(c.v, targets, cfg.metric, &mut scratch.mv);
        match current {
            None => continue,
            Some((to, gain)) => {
                if to != c.to || (gain - c.gain).abs() > 1e-9 {
                    scratch.heap.push(Cand { gain, v: c.v, to });
                    scratch.queued[c.v] = true;
                    continue;
                }
                let from = state.part[c.v];
                state.apply(c.v, to);
                scratch.locked[c.v] = true;
                scratch.applied.push((c.v, from));
                cum += gain;
                if cum > best_cum + 1e-12 {
                    best_cum = cum;
                    best_len = scratch.applied.len();
                    neg_streak = 0;
                } else {
                    neg_streak += 1;
                    if cfg.max_negative_streak > 0 && neg_streak >= cfg.max_negative_streak {
                        break;
                    }
                }
                // Re-queue neighbors whose gains changed (deduped).
                for &j in state.h.vertex_nets(c.v) {
                    if state.h.net_size(j) > MAX_NET_SIZE_FOR_UPDATES {
                        continue;
                    }
                    for &w in state.h.net(j) {
                        if !scratch.locked[w] && !scratch.queued[w] && !fixed.is_fixed(w) {
                            if let Some((to, gain)) =
                                state.best_move_metric(w, targets, cfg.metric, &mut scratch.mv)
                            {
                                scratch.heap.push(Cand { gain, v: w, to });
                                scratch.queued[w] = true;
                            }
                        }
                    }
                }
            }
        }
    }

    // Roll back past the best prefix.
    for &(v, from) in scratch.applied[best_len..].iter().rev() {
        state.apply(v, from);
    }

    let attempted = scratch.applied.len() as u64;
    dlb_trace::count(dlb_trace::Counter::FmPasses, 1);
    dlb_trace::count(dlb_trace::Counter::FmMovesAttempted, attempted);
    dlb_trace::count(dlb_trace::Counter::FmMovesAccepted, best_len as u64);
    dlb_trace::count(
        dlb_trace::Counter::FmMovesRolledBack,
        attempted - best_len as u64,
    );
    best_cum
}

/// Refines `part` in place: first restores balance if violated, then runs
/// FM passes until no pass improves the cut (or `cfg.max_passes`).
/// Returns the total cut improvement from the FM passes.
pub fn refine(
    h: &Hypergraph,
    targets: &PartTargets,
    fixed: &FixedAssignment,
    part: &mut Vec<PartId>,
    cfg: &RefinementConfig,
    rng: &mut StdRng,
) -> f64 {
    let mut scratch = RefineScratch::new();
    refine_threads(h, targets, fixed, part, cfg, rng, 1, &mut scratch)
}

/// [`refine`] with an explicit worker-thread count (state builds and
/// boundary/cut scans) and a caller-owned [`RefineScratch`] reused across
/// calls. Bit-identical to [`refine`] at every thread count: the FM move
/// loop itself is serial; only whole-partition scans are chunked.
#[allow(clippy::too_many_arguments)]
pub fn refine_threads(
    h: &Hypergraph,
    targets: &PartTargets,
    fixed: &FixedAssignment,
    part: &mut Vec<PartId>,
    cfg: &RefinementConfig,
    rng: &mut StdRng,
    threads: usize,
    scratch: &mut RefineScratch,
) -> f64 {
    let k = targets.k();
    if k < 2 || h.num_vertices() == 0 {
        return 0.0;
    }
    let mut state = PartitionState::new_threads(h, k, std::mem::take(part), threads);
    scratch.mv.ensure(k);

    rebalance(&mut state, targets, fixed, &mut scratch.mv);

    let mut total = 0.0;
    for _ in 0..cfg.max_passes {
        let improvement = fm_pass(&mut state, targets, fixed, cfg, scratch, rng);
        total += improvement;
        if improvement <= 1e-12 {
            break;
        }
    }
    *part = state.part;
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_hypergraph::metrics;
    use rand::SeedableRng;

    fn uniform_targets(h: &Hypergraph, k: usize) -> PartTargets {
        PartTargets::uniform(h.total_vertex_weight(), k, 0.05)
    }

    #[test]
    fn state_tracks_cut_incrementally() {
        let h = crate::tests::grid_hypergraph(4, 4);
        let part: Vec<usize> = (0..16).map(|v| v % 2).collect();
        let mut state = PartitionState::new(&h, 2, part.clone());
        assert_eq!(state.cut(), metrics::cutsize_connectivity(&h, &part, 2));
        state.apply(3, 0);
        let mut moved = part;
        moved[3] = 0;
        assert_eq!(state.cut(), metrics::cutsize_connectivity(&h, &moved, 2));
    }

    #[test]
    fn gain_matches_recomputed_cut_delta() {
        let h = crate::tests::random_hypergraph(30, 60, 5, 11);
        let part: Vec<usize> = (0..30).map(|v| v % 3).collect();
        let mut state = PartitionState::new(&h, 3, part);
        for v in [0usize, 7, 13, 29] {
            for q in 0..3 {
                if q == state.part[v] {
                    continue;
                }
                let before = state.cut();
                let gain = state.gain(v, q);
                let from = state.part[v];
                state.apply(v, q);
                let after = state.cut();
                assert!(
                    (before - after - gain).abs() < 1e-9,
                    "v={v} q={q}: predicted {gain}, actual {}",
                    before - after
                );
                state.apply(v, from);
            }
        }
    }

    #[test]
    fn cutnet_gain_matches_recomputed_delta() {
        use dlb_hypergraph::metrics::cutsize;
        let h = crate::tests::random_hypergraph(25, 50, 5, 19);
        let part: Vec<usize> = (0..25).map(|v| v % 3).collect();
        let mut state = PartitionState::new(&h, 3, part);
        for v in [0usize, 6, 12, 24] {
            for q in 0..3 {
                if q == state.part[v] {
                    continue;
                }
                let before = cutsize(&h, &state.part, 3, CutMetric::CutNet);
                let gain = state.gain_metric(v, q, CutMetric::CutNet);
                let from = state.part[v];
                state.apply(v, q);
                let after = cutsize(&h, &state.part, 3, CutMetric::CutNet);
                assert!(
                    (before - after - gain).abs() < 1e-9,
                    "v={v} q={q}: predicted {gain}, actual {}",
                    before - after
                );
                state.apply(v, from);
            }
        }
    }

    #[test]
    fn refine_with_cutnet_objective_improves_cutnet() {
        use dlb_hypergraph::metrics::cutsize;
        let h = crate::tests::grid_hypergraph(8, 8);
        let mut part: Vec<usize> = (0..64).map(|v| v % 2).collect();
        let before = cutsize(&h, &part, 2, CutMetric::CutNet);
        let t = uniform_targets(&h, 2);
        let fixed = FixedAssignment::free(64);
        let cfg = RefinementConfig { metric: CutMetric::CutNet, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(8);
        refine(&h, &t, &fixed, &mut part, &cfg, &mut rng);
        let after = cutsize(&h, &part, 2, CutMetric::CutNet);
        assert!(after < before, "cut-net {before} -> {after}");
    }

    #[test]
    fn refine_improves_a_bad_partition() {
        let h = crate::tests::grid_hypergraph(8, 8);
        // Stripes by column parity: terrible cut.
        let mut part: Vec<usize> = (0..64).map(|v| v % 2).collect();
        let before = metrics::cutsize_connectivity(&h, &part, 2);
        let t = uniform_targets(&h, 2);
        let fixed = FixedAssignment::free(64);
        let mut rng = StdRng::seed_from_u64(0);
        let gain = refine(&h, &t, &fixed, &mut part, &RefinementConfig::default(), &mut rng);
        let after = metrics::cutsize_connectivity(&h, &part, 2);
        assert!((before - after - gain).abs() < 1e-9);
        assert!(after < before / 2.0, "cut {before} -> {after}");
        assert!(metrics::imbalance(&h, &part, 2) <= 1.05 + 1e-9);
    }

    #[test]
    fn refine_never_moves_fixed_vertices() {
        let h = crate::tests::grid_hypergraph(8, 8);
        let mut part: Vec<usize> = (0..64).map(|v| v % 2).collect();
        let mut fixed = FixedAssignment::free(64);
        for v in (0..64).step_by(7) {
            fixed.fix(v, part[v]);
        }
        let t = uniform_targets(&h, 2);
        let mut rng = StdRng::seed_from_u64(1);
        refine(&h, &t, &fixed, &mut part, &RefinementConfig::default(), &mut rng);
        for v in (0..64).step_by(7) {
            assert_eq!(part[v], v % 2, "fixed vertex {v} moved");
        }
    }

    #[test]
    fn refine_respects_caps() {
        let h = crate::tests::random_hypergraph(80, 160, 4, 5);
        let mut part: Vec<usize> = (0..80).map(|v| v % 4).collect();
        let t = uniform_targets(&h, 4);
        let fixed = FixedAssignment::free(80);
        let mut rng = StdRng::seed_from_u64(2);
        refine(&h, &t, &fixed, &mut part, &RefinementConfig::default(), &mut rng);
        let w = metrics::part_weights(&h, &part, 4);
        for p in 0..4 {
            assert!(w[p] <= t.cap(p) + 1e-9, "part {p} weight {} > cap {}", w[p], t.cap(p));
        }
    }

    #[test]
    fn rebalance_fixes_gross_imbalance() {
        let h = crate::tests::grid_hypergraph(8, 8);
        // Everything in part 0.
        let mut part = vec![0usize; 64];
        let t = uniform_targets(&h, 2);
        let fixed = FixedAssignment::free(64);
        let mut rng = StdRng::seed_from_u64(3);
        refine(&h, &t, &fixed, &mut part, &RefinementConfig::default(), &mut rng);
        let imb = metrics::imbalance(&h, &part, 2);
        assert!(imb <= 1.05 + 1e-9, "imbalance {imb} after rebalance+refine");
    }

    #[test]
    fn boundary_detection() {
        let h = crate::tests::grid_hypergraph(4, 4);
        // Left half vs right half: boundary is columns 1 and 2.
        let part: Vec<usize> = (0..16).map(|v| if v % 4 < 2 { 0 } else { 1 }).collect();
        let state = PartitionState::new(&h, 2, part);
        let boundary = state.boundary_vertices();
        let expected: Vec<usize> = (0..16).filter(|v| v % 4 == 1 || v % 4 == 2).collect();
        assert_eq!(boundary, expected);
    }

    #[test]
    fn refine_with_all_fixed_is_a_noop() {
        let h = crate::tests::grid_hypergraph(4, 4);
        let orig: Vec<usize> = (0..16).map(|v| v % 2).collect();
        let mut part = orig.clone();
        let opts: Vec<Option<usize>> = orig.iter().map(|&p| Some(p)).collect();
        let fixed = FixedAssignment::from_options(&opts);
        let t = uniform_targets(&h, 2);
        let mut rng = StdRng::seed_from_u64(4);
        let gain = refine(&h, &t, &fixed, &mut part, &RefinementConfig::default(), &mut rng);
        assert_eq!(part, orig);
        assert_eq!(gain, 0.0);
    }

    #[test]
    fn k_one_is_noop() {
        let h = crate::tests::grid_hypergraph(3, 3);
        let mut part = vec![0usize; 9];
        let t = uniform_targets(&h, 1);
        let fixed = FixedAssignment::free(9);
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(refine(&h, &t, &fixed, &mut part, &RefinementConfig::default(), &mut rng), 0.0);
    }
}
