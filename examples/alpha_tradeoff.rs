//! The α knob: trading communication against migration.
//!
//! The paper's single user parameter α (iterations per epoch; ParMETIS's
//! ITR) decides how much communication saving justifies a unit of
//! migration. This example sweeps α from 1 to 1000 on a molecular-
//! dynamics-like dataset under structural churn and shows the model
//! responding: migration shrinks as α grows, communication improves, and
//! the repartitioner converges to the from-scratch solution.
//!
//! Run with: `cargo run --release --example alpha_tradeoff`

use dlb::core::{Algorithm, RepartConfig, Session};
use dlb::graphpart::{partition_kway, GraphConfig};
use dlb::workloads::{Dataset, DatasetKind, EpochStream, Perturbation};

fn main() {
    let k = 8;
    let epochs = 4;
    let seed = 21;

    println!("alpha sweep: apoa1-like data, structural churn, k={k}\n");
    println!(
        "{:<8} {:<17} {:>12} {:>12} {:>14}",
        "alpha", "algorithm", "mean comm", "mean mig", "norm. total"
    );

    for alpha in [1.0, 10.0, 100.0, 1000.0] {
        for alg in [Algorithm::ZoltanRepart, Algorithm::ZoltanScratch] {
            let dataset = Dataset::generate(DatasetKind::Apoa1_10, 0.005, seed);
            let initial = partition_kway(&dataset.graph, k, &GraphConfig::seeded(seed)).part;
            let mut stream =
                EpochStream::new(dataset.graph, Perturbation::structure(), k, initial, seed);
            let summary = Session::new(RepartConfig::seeded(seed))
                .algorithm(alg)
                .alpha(alpha)
                .epochs(epochs)
                .workload(&mut stream)
                .run()
                .expect("valid session");
            println!(
                "{:<8} {:<17} {:>12.1} {:>12.1} {:>14.1}",
                alpha,
                alg.name(),
                summary.mean_comm(),
                summary.mean_migration(),
                summary.mean_normalized_total(),
            );
        }
    }

    println!("\nreading: at alpha=1 migration dominates the objective, so the");
    println!("repartitioner barely moves data; at alpha=1000 the objective is");
    println!("almost pure communication volume and both methods converge.");
}
