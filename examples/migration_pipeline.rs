//! The full dynamic load-balancing pipeline, end to end, on the SPMD
//! machine: decide (repartition) → act (migrate the data) → verify.
//!
//! Each simulated rank hosts the payloads of its parts. An epoch of
//! structural churn arrives; the repartitioning hypergraph decides the
//! new distribution; the migration service physically moves the payloads
//! whose owner changed; and the realized traffic is checked against the
//! cost the model charged — the two agree exactly, which is the point of
//! the paper's model.
//!
//! Run with: `cargo run --release --example migration_pipeline`

use dlb::core::{
    migrate_items, repartition_parallel, scatter_initial, Algorithm, RepartConfig, RepartProblem,
};
use dlb::graphpart::{partition_kway, GraphConfig};
use dlb::mpisim::run_spmd;
use dlb::workloads::{Dataset, DatasetKind, EpochStream, Perturbation};

fn main() {
    let k = 8;
    let ranks = 4;
    let seed = 5;

    let dataset = Dataset::generate(DatasetKind::Cage14, 0.001, seed);
    let initial = partition_kway(&dataset.graph, k, &GraphConfig::seeded(seed)).part;
    let mut stream =
        EpochStream::new(dataset.graph, Perturbation::structure(), k, initial, seed);
    let snapshot = stream.next_epoch();
    let n = snapshot.graph.num_vertices();
    println!("epoch: {n} vertices, k={k}, {ranks} simulated ranks\n");

    let cfg = RepartConfig::seeded(seed);
    let results = run_spmd(ranks, |comm| {
        // 1. Each rank hosts the payloads of its parts (payload =
        //    vertex id echoed, sized by the vertex's data size).
        let sizes: Vec<f64> = (0..n).map(|v| snapshot.graph.vertex_size(v)).collect();
        let items = scatter_initial(comm.rank(), comm.size(), &snapshot.old_part, |v| {
            (v as u64, sizes[v])
        });
        let hosted_before = items.len();

        // 2. Decide: the repartitioning hypergraph, partitioned with
        //    fixed vertices, collectively.
        let problem = RepartProblem {
            hypergraph: &snapshot.hypergraph,
            graph: &snapshot.graph,
            old_part: &snapshot.old_part,
            k,
            alpha: 10.0,
        };
        let decision = repartition_parallel(comm, &problem, Algorithm::ZoltanRepart, &cfg);

        // 3. Act: move the payloads.
        let (after, stats) = migrate_items(
            comm,
            items,
            &snapshot.old_part,
            &decision.new_part,
            |&(_, size)| size,
        );

        // 4. Verify: every hosted payload is where the decision says.
        for &(v, _) in &after {
            assert_eq!(
                decision.new_part[v] % comm.size(),
                comm.rank(),
                "vertex {v} landed on the wrong rank"
            );
        }
        (hosted_before, after.len(), stats, decision.cost)
    });

    println!(
        "{:>5} {:>14} {:>13} {:>11} {:>11} {:>13}",
        "rank", "hosted before", "hosted after", "sent", "received", "volume sent"
    );
    let mut total_volume = 0.0;
    for (rank, (before, after, stats, _)) in results.iter().enumerate() {
        println!(
            "{:>5} {:>14} {:>13} {:>11} {:>11} {:>13.1}",
            rank, before, after, stats.items_sent, stats.items_received, stats.volume_sent
        );
        total_volume += stats.volume_sent;
    }
    let cost = &results[0].3;
    println!(
        "\nphysical migration volume: {total_volume:.1} (inter-rank)\n\
         model-charged migration:   {:.1} (inter-part; >= physical when\n\
         several parts share a rank, since part moves within a rank are free)",
        cost.migration
    );
    assert!(total_volume <= cost.migration + 1e-9);
}
