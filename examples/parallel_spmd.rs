//! Parallel repartitioning on the simulated SPMD machine.
//!
//! The paper's partitioner is a parallel MPI code; this workspace runs
//! the same algorithm SPMD over simulated ranks (threads + channels —
//! see `dlb-mpisim`). This example repartitions a circuit-like dataset
//! on 4 simulated ranks, checks all ranks agree bit-for-bit, and prints
//! per-rank message counters so the communication pattern is visible.
//!
//! Run with: `cargo run --release --example parallel_spmd`

use dlb::core::{repartition_parallel, Algorithm, RepartConfig, RepartProblem};
use dlb::graphpart::{partition_kway, GraphConfig};
use dlb::hypergraph::convert::column_net_model;
use dlb::mpisim::run_spmd;
use dlb::workloads::{Dataset, DatasetKind, EpochStream, Perturbation};

fn main() {
    let k = 8;
    let ranks = 4;
    let seed = 3;

    let dataset = Dataset::generate(DatasetKind::Xyce680s, 0.005, seed);
    let initial = partition_kway(&dataset.graph, k, &GraphConfig::seeded(seed)).part;
    let mut stream =
        EpochStream::new(dataset.graph, Perturbation::structure(), k, initial, seed);
    let snapshot = stream.next_epoch();
    println!(
        "epoch problem: {} vertices, {} nets; k={k} on {ranks} simulated ranks",
        snapshot.graph.num_vertices(),
        snapshot.hypergraph.num_nets()
    );

    let cfg = RepartConfig::seeded(seed);
    let results = run_spmd(ranks, |comm| {
        let graph = snapshot.graph.clone();
        let hypergraph = column_net_model(&graph, |v| graph.vertex_size(v));
        let problem = RepartProblem {
            hypergraph: &hypergraph,
            graph: &graph,
            old_part: &snapshot.old_part,
            k,
            alpha: 20.0,
        };
        let result = repartition_parallel(comm, &problem, Algorithm::ZoltanRepart, &cfg);
        (result, comm.stats())
    });

    let reference = &results[0].0.new_part;
    for (rank, (result, _)) in results.iter().enumerate() {
        assert_eq!(
            &result.new_part, reference,
            "rank {rank} disagrees with rank 0"
        );
    }
    println!("all {ranks} ranks computed the identical partition\n");

    println!(
        "{:<6} {:>16} {:>16}",
        "rank", "messages sent", "messages recvd"
    );
    for (rank, (_, stats)) in results.iter().enumerate() {
        println!(
            "{:<6} {:>16} {:>16}",
            rank, stats.messages_sent, stats.messages_received
        );
    }

    let r = &results[0].0;
    println!(
        "\nresult: comm {:.1}, migration {:.1}, total cost {:.1}, imbalance {:.3}",
        r.cost.comm,
        r.cost.migration,
        r.cost.total(),
        r.imbalance
    );
}
