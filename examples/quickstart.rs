//! Quickstart: repartition one epoch of an adaptive computation.
//!
//! Builds a small mesh, partitions it statically, perturbs it, then asks
//! the paper's repartitioning model (Zoltan-repart) for a new
//! distribution and prints the cost breakdown next to the
//! partition-from-scratch alternative.
//!
//! Run with: `cargo run --release --example quickstart`

use dlb::core::{repartition, Algorithm, RepartConfig, RepartProblem};
use dlb::graphpart::{partition_kway, GraphConfig};
use dlb::hypergraph::convert::column_net_model;
use dlb::hypergraph::GraphBuilder;

fn main() {
    // A 32x32 grid mesh: the kind of structure an adaptive PDE solver
    // partitions.
    let (rows, cols) = (32, 32);
    let idx = |r: usize, c: usize| r * cols + c;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(idx(r, c), idx(r, c + 1), 1.0);
            }
            if r + 1 < rows {
                b.add_edge(idx(r, c), idx(r + 1, c), 1.0);
            }
        }
    }
    let mut graph = b.build();

    // Epoch 1: static partition into k parts.
    let k = 4;
    let old_part = partition_kway(&graph, k, &GraphConfig::seeded(1)).part;
    println!("static partition: k={k}, {} vertices", graph.num_vertices());

    // The mesh adapts: one region is refined, growing its weight and the
    // size of the data that would have to move.
    for r in 0..rows / 2 {
        for c in 0..cols / 2 {
            graph.set_vertex_weight(idx(r, c), 3.0);
            graph.set_vertex_size(idx(r, c), 3.0);
        }
    }

    // Epoch 2: repartition. alpha = iterations until the next rebalance;
    // small alpha → migration matters as much as communication.
    let hypergraph = column_net_model(&graph, |v| graph.vertex_size(v));
    let alpha = 10.0;
    let problem = RepartProblem {
        hypergraph: &hypergraph,
        graph: &graph,
        old_part: &old_part,
        k,
        alpha,
    };
    let cfg = RepartConfig::seeded(1);

    println!("\nafter refinement (alpha = {alpha}):");
    println!(
        "{:<17} {:>10} {:>10} {:>12} {:>8} {:>10}",
        "algorithm", "comm", "migration", "total cost", "moved", "imbalance"
    );
    for alg in [Algorithm::ZoltanRepart, Algorithm::ZoltanScratch] {
        let r = repartition(&problem, alg, &cfg);
        println!(
            "{:<17} {:>10.1} {:>10.1} {:>12.1} {:>8} {:>10.3}",
            alg.name(),
            r.cost.comm,
            r.cost.migration,
            r.cost.total(),
            r.moved,
            r.imbalance
        );
    }
    println!("\nZoltan-repart minimizes alpha*comm + migration in one shot by");
    println!("partitioning the repartitioning hypergraph with fixed vertices.");
}
