//! A "real adaptive application" end to end — the paper's future-work
//! item ("we will test our algorithm and implementation on real adaptive
//! applications").
//!
//! A Jacobi heat-diffusion solver runs SPMD over the simulated machine:
//! every rank owns the cells of its parts, halo values travel through a
//! reusable [`CommPlan`] each iteration, and a hot region that wanders
//! across the mesh keeps changing where the computational load sits
//! (each epoch the cells inside it do extra smoothing work). Every epoch
//! the paper's repartitioner rebalances; cell state physically migrates
//! with [`migrate_items`]. At the end the distributed temperatures are
//! gathered and compared bit-for-bit against a serial reference — the
//! whole stack (model → partitioner → migration → halo exchange) has to
//! be correct for that to hold.
//!
//! Run with: `cargo run --release --example heat_simulation`

use dlb::core::{migrate_items, repartition, Algorithm, RepartConfig, RepartProblem};
use dlb::graphpart::{partition_kway, GraphConfig};
use dlb::hypergraph::convert::column_net_model;
use dlb::hypergraph::{CsrGraph, GraphBuilder};
use dlb::mpisim::{run_spmd, CommPlan};

const ROWS: usize = 32;
const COLS: usize = 32;
const EPOCHS: usize = 3;
const ITERS_PER_EPOCH: usize = 10;
const K: usize = 4; // parts == ranks

fn grid() -> CsrGraph {
    let idx = |r: usize, c: usize| r * COLS + c;
    let mut b = GraphBuilder::new(ROWS * COLS);
    for r in 0..ROWS {
        for c in 0..COLS {
            if c + 1 < COLS {
                b.add_edge(idx(r, c), idx(r, c + 1), 1.0);
            }
            if r + 1 < ROWS {
                b.add_edge(idx(r, c), idx(r + 1, c), 1.0);
            }
        }
    }
    b.build()
}

/// The wandering hot region: epoch `e` heats a square whose extra work
/// (weight) and data growth (size) the load balancer must chase.
fn hot_region(epoch: usize, v: usize) -> bool {
    let (r, c) = (v / COLS, v % COLS);
    let r0 = (epoch * ROWS) / (EPOCHS + 1);
    let c0 = (epoch * COLS) / (EPOCHS + 1);
    r >= r0 && r < r0 + ROWS / 2 && c >= c0 && c < c0 + COLS / 2
}

/// One Jacobi sweep over the chosen cells: plain averaging, with a
/// second smoothing pass for hot cells (their "extra work").
fn jacobi_step(
    g: &CsrGraph,
    temps: &dyn Fn(usize) -> f64,
    hot: &dyn Fn(usize) -> bool,
    cells: &[usize],
) -> Vec<(usize, f64)> {
    cells
        .iter()
        .map(|&v| {
            let mut acc = temps(v);
            let mut count = 1.0;
            for &u in g.neighbors(v) {
                acc += temps(u);
                count += 1.0;
            }
            let mut t = acc / count;
            if hot(v) {
                // Extra work: damped second smoothing (deterministic).
                t = 0.5 * t + 0.5 * (acc - temps(v)) / (count - 1.0);
            }
            (v, t)
        })
        .collect()
}

/// Serial reference: the exact same physics on one address space.
fn serial_reference(g: &CsrGraph) -> Vec<f64> {
    let n = g.num_vertices();
    let mut temps: Vec<f64> = (0..n).map(|v| (v % 17) as f64).collect();
    for epoch in 0..EPOCHS {
        for _ in 0..ITERS_PER_EPOCH {
            let all: Vec<usize> = (0..n).collect();
            let snapshot = temps.clone();
            for (v, t) in jacobi_step(g, &|u| snapshot[u], &|u| hot_region(epoch, u), &all) {
                temps[v] = t;
            }
        }
    }
    temps
}

fn main() {
    let g = grid();
    let n = g.num_vertices();
    let reference = serial_reference(&g);

    // Static partition for epoch 0.
    let initial = partition_kway(&g, K, &GraphConfig::seeded(1)).part;
    let cfg = RepartConfig::seeded(1);

    let results = run_spmd(K, |comm| {
        let me = comm.rank();
        let mut part = initial.clone();
        // Rank-local state: owned cells and their temperatures.
        let mut owned: Vec<(usize, f64)> = (0..n)
            .filter(|&v| part[v] % comm.size() == me)
            .map(|v| (v, (v % 17) as f64))
            .collect();
        let mut report = Vec::new();

        for epoch in 0..EPOCHS {
            // --- Adapt: the hot region moved; update weights/sizes. ---
            let mut weighted = g.clone();
            for v in 0..n {
                let w = if hot_region(epoch, v) { 3.0 } else { 1.0 };
                weighted.set_vertex_weight(v, w);
                weighted.set_vertex_size(v, w);
            }
            let hypergraph = column_net_model(&weighted, |v| weighted.vertex_size(v));

            // --- Rebalance (every rank computes the same decision). ---
            let problem = RepartProblem {
                hypergraph: &hypergraph,
                graph: &weighted,
                old_part: &part,
                k: K,
                alpha: ITERS_PER_EPOCH as f64,
            };
            let decision = repartition(&problem, Algorithm::ZoltanRepart, &cfg);

            // --- Migrate cell state to the new owners. ---
            let (new_owned, stats) =
                migrate_items(comm, owned, &part, &decision.new_part, |_| 1.0);
            owned = new_owned;
            part = decision.new_part.clone();

            // --- Build this epoch's halo plan. ---
            // For each owned cell with a remote neighbor, send its value
            // to that neighbor's owner each iteration.
            let mut destinations = Vec::new();
            let mut halo_sources = Vec::new(); // owned cell per outgoing slot
            for &(v, _) in &owned {
                let mut sent_to = [false; K];
                for &u in g.neighbors(v) {
                    let owner = part[u] % comm.size();
                    if owner != me && !sent_to[owner] {
                        sent_to[owner] = true;
                        destinations.push(owner);
                        halo_sources.push(v);
                    }
                }
            }
            let plan = CommPlan::build(comm, &destinations);

            // --- Compute the epoch. ---
            let mut halo_volume = 0usize;
            for _ in 0..ITERS_PER_EPOCH {
                // Exchange halo values (cell id, temperature).
                let outgoing: Vec<(usize, f64)> = halo_sources
                    .iter()
                    .map(|&v| (v, owned.iter().find(|(x, _)| *x == v).unwrap().1))
                    .collect();
                let halo = plan.execute(comm, &outgoing);
                halo_volume += outgoing.len();

                // Temperatures visible to this rank: owned + halo.
                let mut visible = vec![f64::NAN; n];
                for &(v, t) in owned.iter().chain(&halo) {
                    visible[v] = t;
                }
                let cells: Vec<usize> = owned.iter().map(|(v, _)| *v).collect();
                let updated = jacobi_step(
                    &g,
                    &|u| visible[u],
                    &|u| hot_region(epoch, u),
                    &cells,
                );
                for (slot, (_, t)) in owned.iter_mut().zip(&updated) {
                    slot.1 = *t;
                }
            }

            // Epoch accounting: modeled load, halo volume, migration.
            let work: f64 = owned
                .iter()
                .map(|&(v, _)| if hot_region(epoch, v) { 3.0 } else { 1.0 })
                .sum();
            let max_work = comm.allreduce(work, f64::max);
            let total_halo = comm.allreduce(halo_volume as f64, |a, b| a + b);
            let total_mig = comm.allreduce(stats.volume_sent, |a, b| a + b);
            if me == 0 {
                report.push((epoch, max_work, total_halo, total_mig, decision.imbalance));
            }
        }

        // Gather final temperatures at rank 0 for verification.
        let gathered = comm.gather(0, owned.clone());
        (report, gathered)
    });

    // --- Verify against the serial reference. ---
    let mut final_temps = vec![f64::NAN; n];
    for batch in results[0].1.as_ref().expect("rank 0 gathered") {
        for &(v, t) in batch {
            final_temps[v] = t;
        }
    }
    let max_err = reference
        .iter()
        .zip(&final_temps)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    assert!(max_err < 1e-9, "distributed result diverged: max err {max_err}");

    println!("heat simulation: {ROWS}x{COLS} grid, k={K}, {EPOCHS} epochs x {ITERS_PER_EPOCH} iters");
    println!("distributed result matches the serial reference (max err {max_err:.2e})\n");
    println!(
        "{:>6} {:>12} {:>14} {:>12} {:>11}",
        "epoch", "max work", "halo volume", "migration", "imbalance"
    );
    for (epoch, max_work, halo, mig, imb) in &results[0].0 {
        println!("{epoch:>6} {max_work:>12.1} {halo:>14.1} {mig:>12.1} {imb:>11.3}");
    }
    let ideal: f64 = (0..n)
        .map(|v| if hot_region(0, v) { 3.0 } else { 1.0 })
        .sum::<f64>()
        / K as f64;
    println!("\nperfect balance would put max work at ~{ideal:.0} per rank;");
    println!("the repartitioner keeps chasing the hot region each epoch.");
}
