//! Non-symmetric problems: where hypergraphs clearly beat graphs.
//!
//! The paper's conclusion: "The full benefit of hypergraph partitioning
//! is realized on unsymmetric and non-square problems that cannot be
//! represented easily with graph models." This example builds a
//! directed circuit-like dependency structure, partitions it with the
//! hypergraph partitioner (which sees the true communication volume via
//! the column-net model) and with the graph partitioner (which must work
//! on the symmetrized structure), and reports the *actual* directed
//! communication volume both achieve.
//!
//! Run with: `cargo run --release --example nonsymmetric`

use dlb::graphpart::{partition_kway, GraphConfig};
use dlb::hypergraph::metrics;
use dlb::partitioner::{partition_hypergraph, Config as HgConfig};
use dlb::workloads::{directed_circuit, directed_comm_volume};

fn main() {
    let n = 3000;
    let d = directed_circuit(n, 2.5, 11);
    println!(
        "directed circuit: {} vertices, {} nets, {} symmetrized edges\n",
        n,
        d.hypergraph.num_nets(),
        d.symmetrized.num_edges()
    );

    println!(
        "{:<6} {:>22} {:>22} {:>9}",
        "k", "hypergraph (volume)", "graph (volume)", "saving"
    );
    for k in [4usize, 8, 16] {
        let mut hg_vol = 0.0;
        let mut g_vol = 0.0;
        let trials = 3;
        for seed in 0..trials {
            let hg = partition_hypergraph(&d.hypergraph, k, &HgConfig::seeded(seed));
            let g = partition_kway(&d.symmetrized, k, &GraphConfig::seeded(seed));
            hg_vol += directed_comm_volume(&d, &hg.part, k);
            g_vol += directed_comm_volume(&d, &g.part, k);
            // Sanity: the hypergraph cut IS the directed volume.
            let cut = metrics::cutsize_connectivity(&d.hypergraph, &hg.part, k);
            assert!((cut - directed_comm_volume(&d, &hg.part, k)).abs() < 1e-9);
        }
        hg_vol /= trials as f64;
        g_vol /= trials as f64;
        println!(
            "{:<6} {:>22.1} {:>22.1} {:>8.1}%",
            k,
            hg_vol,
            g_vol,
            100.0 * (1.0 - hg_vol / g_vol)
        );
    }

    println!("\nthe hypergraph model counts each producer→part transfer once;");
    println!("the symmetrized graph cannot see fan-out sharing or direction,");
    println!("so it optimizes the wrong objective and ships more data.");
}
