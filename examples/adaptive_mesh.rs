//! Adaptive mesh refinement over many epochs — the paper's motivating
//! scenario (Section 1: "a classic example is simulation based on
//! adaptive mesh refinement, in which the computational mesh changes
//! between time steps").
//!
//! Simulates a structural-analysis mesh (the `auto` regime) whose
//! subdomains are repeatedly refined (the paper's weight-perturbation
//! dynamic), and compares all four algorithms over the whole run.
//!
//! Run with: `cargo run --release --example adaptive_mesh`

use dlb::core::{Algorithm, RepartConfig, Session};
use dlb::graphpart::{partition_kway, GraphConfig};
use dlb::workloads::{Dataset, DatasetKind, EpochStream, Perturbation};

fn main() {
    let k = 8;
    let alpha = 50.0;
    let epochs = 5;
    let seed = 7;

    println!("adaptive mesh refinement: auto-like mesh, k={k}, alpha={alpha}, {epochs} epochs\n");

    println!(
        "{:<17} {:>12} {:>12} {:>14} {:>10} {:>10}",
        "algorithm", "mean comm", "mean mig", "norm. total", "max imb", "time/epoch"
    );
    for alg in Algorithm::ALL {
        // Every algorithm gets an identically seeded world: same mesh,
        // same initial partition, same refinement sequence.
        let dataset = Dataset::generate(DatasetKind::Auto, 0.005, seed);
        let initial = partition_kway(&dataset.graph, k, &GraphConfig::seeded(seed)).part;
        let mut stream =
            EpochStream::new(dataset.graph, Perturbation::weights(), k, initial, seed);
        let summary = Session::new(RepartConfig::seeded(seed))
            .algorithm(alg)
            .alpha(alpha)
            .epochs(epochs)
            .workload(&mut stream)
            .run()
            .expect("valid session");
        println!(
            "{:<17} {:>12.1} {:>12.1} {:>14.1} {:>10.3} {:>8.1}ms",
            alg.name(),
            summary.mean_comm(),
            summary.mean_migration(),
            summary.mean_normalized_total(),
            summary.max_imbalance(),
            summary.mean_elapsed().as_secs_f64() * 1e3,
        );
    }

    println!("\nthe repartitioners (―repart) keep migration low; the scratch");
    println!("methods re-derive a fresh partition and pay to move the data.");
}
