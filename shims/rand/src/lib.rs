//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the exact API subset it uses: `StdRng` + `SeedableRng`,
//! `Rng::{gen, gen_range, gen_bool}`, and `seq::SliceRandom::shuffle`.
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), but the workspace only
//! relies on determinism and statistical quality, never on a specific
//! stream.

use std::ops::{Range, RangeInclusive};

/// Minimal core RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface; only `seed_from_u64` is used by this workspace.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed. Equal seeds give equal
    /// streams.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generator namespace, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples a uniform value of this type.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Uniform integer in `[0, span)` by rejection sampling (unbiased).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Largest multiple of `span` that fits in u64; values at or above it
    // would bias the modulus and are rejected.
    let zone = u64::MAX - u64::MAX.wrapping_rem(span).wrapping_add(1).wrapping_rem(span);
    loop {
        let x = rng.next_u64();
        if x <= zone {
            return x % span;
        }
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// The user-facing RNG interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a uniform value of type `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} out of range");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{uniform_below, RngCore};

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Uniform Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(2usize..=5);
            assert!((2..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_edge_probabilities() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left slice untouched");
    }
}
