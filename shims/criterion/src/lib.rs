//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the exact bench API surface it uses: `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `Bencher::iter`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros. Measurement is plain
//! wall-clock: each benchmark runs a short warmup, then `sample_size`
//! timed iterations, and prints mean / min / max per iteration.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier, mirroring `criterion::black_box`.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier combining a function name and a parameter, mirroring
/// `criterion::BenchmarkId`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id rendered as `name/parameter`.
    pub fn new<P: Display>(name: impl Into<String>, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", name.into()),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` once as warmup, then `sample_size` timed iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let full = format!("{}/{label}", self.name);
        if b.samples.is_empty() {
            println!("{full}: no samples recorded");
            return;
        }
        let total: Duration = b.samples.iter().sum();
        let mean = total / b.samples.len() as u32;
        let min = b.samples.iter().min().unwrap();
        let max = b.samples.iter().max().unwrap();
        println!(
            "{full}: mean {mean:?} min {min:?} max {max:?} ({} samples)",
            b.samples.len()
        );
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkLabel, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_label();
        self.run(&label, &mut f);
        self
    }

    /// Benchmarks `f` with a borrowed input, mirroring
    /// `BenchmarkGroup::bench_with_input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.into_label();
        self.run(&label, |b| f(b, input));
        self
    }

    /// Ends the group (upstream writes reports here; the shim prints as
    /// it goes, so this is a no-op kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Labels accepted by [`BenchmarkGroup::bench_function`].
pub trait IntoBenchmarkLabel {
    /// Renders the label text.
    fn into_label(self) -> String;
}

impl IntoBenchmarkLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoBenchmarkLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

/// Benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }
}

/// Collects benchmark functions into a runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        let mut calls = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| calls += 1);
        });
        group.bench_with_input(BenchmarkId::new("with_input", 3usize), &3usize, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        group.finish();
        // One warmup + two samples.
        assert_eq!(calls, 3);
    }

    #[test]
    fn benchmark_id_formats_as_name_slash_param() {
        assert_eq!(BenchmarkId::new("alg", 16).into_label(), "alg/16");
    }
}
